#include "relation/binary_io.h"

#include <cstdint>
#include <cstring>
#include <fstream>
#include <sstream>

#include "common/strings.h"
#include "robust/fault_injector.h"
#include "robust/safe_io.h"

namespace incognito {

namespace {

constexpr char kMagic[4] = {'I', 'N', 'C', 'T'};
constexpr uint32_t kVersion = 1;

class Writer {
 public:
  explicit Writer(std::ostream& out) : out_(out) {}

  void U8(uint8_t v) { out_.write(reinterpret_cast<const char*>(&v), 1); }
  void U32(uint32_t v) {
    out_.write(reinterpret_cast<const char*>(&v), sizeof(v));
  }
  void U64(uint64_t v) {
    out_.write(reinterpret_cast<const char*>(&v), sizeof(v));
  }
  void I64(int64_t v) {
    out_.write(reinterpret_cast<const char*>(&v), sizeof(v));
  }
  void F64(double v) {
    out_.write(reinterpret_cast<const char*>(&v), sizeof(v));
  }
  void Str(const std::string& s) {
    U32(static_cast<uint32_t>(s.size()));
    out_.write(s.data(), static_cast<std::streamsize>(s.size()));
  }
  void Bytes(const void* data, size_t n) {
    out_.write(reinterpret_cast<const char*>(data),
               static_cast<std::streamsize>(n));
  }

 private:
  std::ostream& out_;
};

class Reader {
 public:
  explicit Reader(std::istream& in) : in_(in) {}

  bool ok() const { return static_cast<bool>(in_); }

  uint8_t U8() {
    uint8_t v = 0;
    in_.read(reinterpret_cast<char*>(&v), 1);
    return v;
  }
  uint32_t U32() {
    uint32_t v = 0;
    in_.read(reinterpret_cast<char*>(&v), sizeof(v));
    return v;
  }
  uint64_t U64() {
    uint64_t v = 0;
    in_.read(reinterpret_cast<char*>(&v), sizeof(v));
    return v;
  }
  int64_t I64() {
    int64_t v = 0;
    in_.read(reinterpret_cast<char*>(&v), sizeof(v));
    return v;
  }
  double F64() {
    double v = 0;
    in_.read(reinterpret_cast<char*>(&v), sizeof(v));
    return v;
  }
  std::string Str() {
    uint32_t len = U32();
    if (len > (1u << 30)) {
      in_.setstate(std::ios::failbit);
      return "";
    }
    std::string s(len, '\0');
    in_.read(s.data(), len);
    return s;
  }
  void Bytes(void* data, size_t n) {
    in_.read(reinterpret_cast<char*>(data), static_cast<std::streamsize>(n));
  }

 private:
  std::istream& in_;
};

uint8_t TypeTag(DataType type) {
  switch (type) {
    case DataType::kInt64:
      return 0;
    case DataType::kDouble:
      return 1;
    case DataType::kString:
      return 2;
  }
  return 2;
}

}  // namespace

Status WriteTableBinary(const Table& table, const std::string& path) {
  std::ostringstream buf;
  Writer w(buf);
  w.Bytes(kMagic, 4);
  w.U32(kVersion);
  w.U32(static_cast<uint32_t>(table.num_columns()));
  w.U64(table.num_rows());
  for (size_t c = 0; c < table.num_columns(); ++c) {
    w.U8(TypeTag(table.schema().column(c).type));
    w.Str(table.schema().column(c).name);
  }
  for (size_t c = 0; c < table.num_columns(); ++c) {
    const Dictionary& dict = table.dictionary(c);
    w.U32(static_cast<uint32_t>(dict.size()));
    for (size_t i = 0; i < dict.size(); ++i) {
      const Value& v = dict.value(static_cast<int32_t>(i));
      if (v.is_null()) {
        w.U8(0);
      } else if (v.is_int64()) {
        w.U8(1);
        w.I64(v.int64());
      } else if (v.is_double()) {
        w.U8(2);
        w.F64(v.dbl());
      } else {
        w.U8(3);
        w.Str(v.str());
      }
    }
  }
  for (size_t c = 0; c < table.num_columns(); ++c) {
    const std::vector<int32_t>& codes = table.ColumnCodes(c);
    w.Bytes(codes.data(), codes.size() * sizeof(int32_t));
  }
  if (!buf) return Status::IOError("serializing table for '" + path + "' failed");
  return WriteFileAtomic(path, buf.str(), "binary_io.write");
}

Result<Table> ReadTableBinary(const std::string& path) {
  INCOGNITO_FAULT_POINT(
      "binary_io.read.open",
      Status::IOError("injected open failure reading '" + path + "'"));
  std::ifstream file(path, std::ios::binary);
  if (!file) return Status::IOError("cannot open '" + path + "'");
  INCOGNITO_FAULT_POINT(
      "binary_io.read.io",
      Status::IOError("injected read failure for '" + path + "'"));
  Reader r(file);
  char magic[4];
  r.Bytes(magic, 4);
  if (!r.ok() || memcmp(magic, kMagic, 4) != 0) {
    return Status::InvalidArgument("'" + path + "' is not a table file");
  }
  uint32_t version = r.U32();
  if (version != kVersion) {
    return Status::InvalidArgument(
        StringPrintf("unsupported table file version %u", version));
  }
  uint32_t num_columns = r.U32();
  uint64_t num_rows = r.U64();
  if (!r.ok() || num_columns == 0 || num_columns > 4096) {
    return Status::InvalidArgument("corrupt table file header");
  }

  std::vector<ColumnSpec> specs(num_columns);
  for (ColumnSpec& spec : specs) {
    uint8_t tag = r.U8();
    spec.type = tag == 0   ? DataType::kInt64
                : tag == 1 ? DataType::kDouble
                           : DataType::kString;
    spec.name = r.Str();
  }
  if (!r.ok()) return Status::InvalidArgument("corrupt table file schema");
  Table table{Schema(std::move(specs))};

  std::vector<uint32_t> dict_sizes(num_columns);
  for (uint32_t c = 0; c < num_columns; ++c) {
    uint32_t dict_size = r.U32();
    dict_sizes[c] = dict_size;
    Dictionary& dict = table.mutable_dictionary(c);
    for (uint32_t i = 0; i < dict_size; ++i) {
      uint8_t tag = r.U8();
      Value v;
      switch (tag) {
        case 0:
          break;
        case 1:
          v = Value(r.I64());
          break;
        case 2:
          v = Value(r.F64());
          break;
        case 3:
          v = Value(r.Str());
          break;
        default:
          return Status::InvalidArgument("corrupt dictionary value tag");
      }
      if (dict.GetOrInsert(v) != static_cast<int32_t>(i)) {
        return Status::InvalidArgument(
            "corrupt dictionary: duplicate values");
      }
    }
    if (!r.ok()) return Status::InvalidArgument("corrupt dictionary");
  }

  // Column codes, appended row-wise via a transposed read.
  std::vector<std::vector<int32_t>> columns(num_columns);
  for (uint32_t c = 0; c < num_columns; ++c) {
    columns[c].resize(num_rows);
    r.Bytes(columns[c].data(), num_rows * sizeof(int32_t));
    if (!r.ok()) return Status::InvalidArgument("corrupt column data");
    for (int32_t code : columns[c]) {
      if (code < 0 || static_cast<uint32_t>(code) >= dict_sizes[c]) {
        return Status::InvalidArgument("code out of dictionary range");
      }
    }
  }
  std::vector<int32_t> row(num_columns);
  for (uint64_t i = 0; i < num_rows; ++i) {
    for (uint32_t c = 0; c < num_columns; ++c) row[c] = columns[c][i];
    table.AppendRowCodes(row);
  }
  return table;
}

}  // namespace incognito
