#ifndef INCOGNITO_RELATION_CSV_H_
#define INCOGNITO_RELATION_CSV_H_

#include <string>

#include "common/status.h"
#include "relation/table.h"
#include "robust/retry.h"

namespace incognito {

/// Options controlling CSV import.
struct CsvReadOptions {
  /// Field separator.
  char separator = ',';
  /// If true, the first line is a header naming the columns.
  bool has_header = true;
  /// If true, attempt to parse each column as int64, then double, falling
  /// back to string (a column gets the narrowest type every row satisfies).
  bool infer_types = true;
  /// Rows longer than this many bytes are rejected with InvalidArgument
  /// (guards against pathological or corrupt input). 0 means unlimited.
  size_t max_row_bytes = 1 << 20;
  /// Retry policy for the file read (transient I/O errors only). Default
  /// RetryPolicy::None(): a failed open/read surfaces immediately, which
  /// the fault-injection CLI tests rely on. Opt in for flaky filesystems.
  RetryPolicy retry = RetryPolicy::None();
};

/// Reads a CSV file into a Table. Fields may be double-quoted; embedded
/// quotes are escaped by doubling ("").
Result<Table> ReadCsv(const std::string& path,
                      const CsvReadOptions& options = {});

/// Parses CSV from an in-memory string (same semantics as ReadCsv).
Result<Table> ParseCsv(const std::string& content,
                       const CsvReadOptions& options = {});

/// Writes a table to a CSV file with a header row. Values containing the
/// separator, quotes, or newlines are quoted.
Status WriteCsv(const Table& table, const std::string& path,
                char separator = ',');

/// Serializes a table to a CSV string (same semantics as WriteCsv).
std::string ToCsvString(const Table& table, char separator = ',');

}  // namespace incognito

#endif  // INCOGNITO_RELATION_CSV_H_
