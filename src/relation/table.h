#ifndef INCOGNITO_RELATION_TABLE_H_
#define INCOGNITO_RELATION_TABLE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "relation/dictionary.h"
#include "relation/schema.h"
#include "relation/value.h"

namespace incognito {

/// An in-memory, columnar, dictionary-encoded relation.
///
/// This is the substrate the paper's algorithms run on: the microdata table
/// T, the frequency-set temp tables, and the anonymized views are all Tables.
/// Each column stores dense int32 codes; per-column dictionaries own the
/// distinct values. A Table is a multiset of tuples — duplicate rows are
/// allowed and significant (k-anonymity is defined over tuple counts).
class Table {
 public:
  Table() = default;
  explicit Table(Schema schema);

  Table(const Table&) = default;
  Table& operator=(const Table&) = default;
  Table(Table&&) = default;
  Table& operator=(Table&&) = default;

  const Schema& schema() const { return schema_; }
  size_t num_rows() const { return num_rows_; }
  size_t num_columns() const { return schema_.num_columns(); }

  /// Appends a row of values; fails if the arity does not match the schema
  /// or a value's type does not match its column (NULLs are always allowed).
  Status AppendRow(const std::vector<Value>& row);

  /// Appends a row of pre-encoded codes. The caller is responsible for the
  /// codes being valid w.r.t. the column dictionaries.
  void AppendRowCodes(const std::vector<int32_t>& codes);

  /// Decoded cell access.
  const Value& GetValue(size_t row, size_t col) const {
    return dictionaries_[col]->value(columns_[col][row]);
  }

  /// Encoded cell access.
  int32_t GetCode(size_t row, size_t col) const { return columns_[col][row]; }

  /// Whole encoded column (hot path for group-by scans).
  const std::vector<int32_t>& ColumnCodes(size_t col) const {
    return columns_[col];
  }

  /// The dictionary of a column.
  const Dictionary& dictionary(size_t col) const { return *dictionaries_[col]; }
  Dictionary& mutable_dictionary(size_t col) { return *dictionaries_[col]; }

  /// Returns a decoded row.
  std::vector<Value> GetRow(size_t row) const;

  /// Returns a new table with only the given columns, in the given order.
  Result<Table> Project(const std::vector<size_t>& cols) const;

  /// Returns a new table with only the rows for which keep[row] is true.
  /// Requires keep.size() == num_rows().
  Table FilterRows(const std::vector<bool>& keep) const;

  /// Multiset equality: same schema and same bag of decoded tuples
  /// (independent of row order and dictionary code assignment).
  bool MultisetEquals(const Table& other) const;

  /// Pretty-prints up to `max_rows` rows (all if 0) for diagnostics.
  std::string ToString(size_t max_rows = 20) const;

 private:
  Schema schema_;
  // Shared dictionaries make projections cheap and keep codes stable across
  // derived tables.
  std::vector<std::shared_ptr<Dictionary>> dictionaries_;
  std::vector<std::vector<int32_t>> columns_;
  size_t num_rows_ = 0;
};

}  // namespace incognito

#endif  // INCOGNITO_RELATION_TABLE_H_
