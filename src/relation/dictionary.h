#ifndef INCOGNITO_RELATION_DICTIONARY_H_
#define INCOGNITO_RELATION_DICTIONARY_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "relation/value.h"

namespace incognito {

/// Bidirectional mapping between Values and dense int32 codes.
///
/// Every table column is dictionary-encoded: the column stores codes, the
/// dictionary owns the distinct values in first-seen order. Hierarchies are
/// compiled against these codes, so generalizing a cell is an array lookup.
class Dictionary {
 public:
  Dictionary() = default;

  /// Returns the code for `v`, inserting it if new.
  int32_t GetOrInsert(const Value& v);

  /// Returns the code for `v`, or -1 if not present.
  int32_t Find(const Value& v) const;

  /// Returns the value for a code. Requires 0 <= code < size().
  const Value& value(int32_t code) const {
    return values_[static_cast<size_t>(code)];
  }

  /// Number of distinct values.
  size_t size() const { return values_.size(); }

  /// Returns a permutation of codes that orders values ascending (used by
  /// the ordered-set partitioning models, which treat the domain as a
  /// totally ordered set).
  std::vector<int32_t> SortedCodes() const;

 private:
  std::vector<Value> values_;
  std::unordered_map<Value, int32_t, ValueHash> index_;
};

}  // namespace incognito

#endif  // INCOGNITO_RELATION_DICTIONARY_H_
