#include "relation/ops.h"

#include <unordered_map>

#include "common/strings.h"

namespace incognito {

Result<Table> HashJoin(const Table& left, const std::string& left_key,
                       const Table& right, const std::string& right_key) {
  Result<size_t> lk = left.schema().ColumnIndex(left_key);
  if (!lk.ok()) return lk.status();
  Result<size_t> rk = right.schema().ColumnIndex(right_key);
  if (!rk.ok()) return rk.status();

  // Output schema: left columns, then right columns minus the key, with
  // collision-avoiding names.
  std::vector<ColumnSpec> specs(left.schema().columns());
  std::vector<size_t> right_cols;
  for (size_t c = 0; c < right.num_columns(); ++c) {
    if (c == rk.value()) continue;
    ColumnSpec spec = right.schema().column(c);
    if (left.schema().FindColumn(spec.name) >= 0) {
      spec.name = "right." + spec.name;
    }
    specs.push_back(std::move(spec));
    right_cols.push_back(c);
  }
  Table out{Schema(std::move(specs))};

  // Build side: hash the right key values (decoded, so the join works
  // across tables with different dictionaries).
  std::unordered_map<Value, std::vector<size_t>, ValueHash> build;
  for (size_t r = 0; r < right.num_rows(); ++r) {
    build[right.GetValue(r, rk.value())].push_back(r);
  }

  std::vector<Value> row(out.num_columns());
  for (size_t l = 0; l < left.num_rows(); ++l) {
    auto it = build.find(left.GetValue(l, lk.value()));
    if (it == build.end()) continue;
    for (size_t c = 0; c < left.num_columns(); ++c) {
      row[c] = left.GetValue(l, c);
    }
    for (size_t r : it->second) {
      for (size_t j = 0; j < right_cols.size(); ++j) {
        row[left.num_columns() + j] = right.GetValue(r, right_cols[j]);
      }
      INCOGNITO_RETURN_IF_ERROR(out.AppendRow(row));
    }
  }
  return out;
}

Result<Table> GroupByCount(const Table& table,
                           const std::vector<std::string>& columns) {
  std::vector<size_t> cols;
  cols.reserve(columns.size());
  std::vector<ColumnSpec> specs;
  for (const std::string& name : columns) {
    Result<size_t> idx = table.schema().ColumnIndex(name);
    if (!idx.ok()) return idx.status();
    cols.push_back(idx.value());
    specs.push_back(table.schema().column(idx.value()));
  }
  specs.push_back({"count", DataType::kInt64});

  // Group on the encoded codes (cheap), remember one representative row
  // per group for decoding.
  struct VecHash {
    size_t operator()(const std::vector<int32_t>& v) const {
      uint64_t h = 0xcbf29ce484222325ULL;
      for (int32_t x : v) {
        h ^= static_cast<uint32_t>(x);
        h *= 0x100000001b3ULL;
      }
      return static_cast<size_t>(h);
    }
  };
  std::unordered_map<std::vector<int32_t>, int64_t, VecHash> counts;
  std::vector<int32_t> key(cols.size());
  for (size_t r = 0; r < table.num_rows(); ++r) {
    for (size_t i = 0; i < cols.size(); ++i) key[i] = table.GetCode(r, cols[i]);
    ++counts[key];
  }

  Table out{Schema(std::move(specs))};
  std::vector<Value> row(cols.size() + 1);
  for (const auto& [codes, count] : counts) {
    for (size_t i = 0; i < cols.size(); ++i) {
      row[i] = table.dictionary(cols[i]).value(codes[i]);
    }
    row[cols.size()] = Value(count);
    INCOGNITO_RETURN_IF_ERROR(out.AppendRow(row));
  }
  return out;
}

Result<Table> ProjectColumns(const Table& table,
                             const std::vector<std::string>& columns) {
  std::vector<size_t> cols;
  cols.reserve(columns.size());
  for (const std::string& name : columns) {
    Result<size_t> idx = table.schema().ColumnIndex(name);
    if (!idx.ok()) return idx.status();
    cols.push_back(idx.value());
  }
  return table.Project(cols);
}

}  // namespace incognito
