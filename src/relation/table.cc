#include "relation/table.h"

#include <algorithm>
#include <cassert>
#include <map>

#include "common/strings.h"

namespace incognito {

Table::Table(Schema schema) : schema_(std::move(schema)) {
  dictionaries_.reserve(schema_.num_columns());
  columns_.resize(schema_.num_columns());
  for (size_t i = 0; i < schema_.num_columns(); ++i) {
    dictionaries_.push_back(std::make_shared<Dictionary>());
  }
}

namespace {

bool TypeMatches(const Value& v, DataType type) {
  if (v.is_null()) return true;
  switch (type) {
    case DataType::kInt64:
      return v.is_int64();
    case DataType::kDouble:
      return v.is_double() || v.is_int64();
    case DataType::kString:
      return v.is_string();
  }
  return false;
}

}  // namespace

Status Table::AppendRow(const std::vector<Value>& row) {
  if (row.size() != schema_.num_columns()) {
    return Status::InvalidArgument(StringPrintf(
        "row arity %zu does not match schema arity %zu", row.size(),
        schema_.num_columns()));
  }
  for (size_t i = 0; i < row.size(); ++i) {
    if (!TypeMatches(row[i], schema_.column(i).type)) {
      return Status::InvalidArgument(
          "value for column '" + schema_.column(i).name + "' has wrong type");
    }
  }
  for (size_t i = 0; i < row.size(); ++i) {
    columns_[i].push_back(dictionaries_[i]->GetOrInsert(row[i]));
  }
  ++num_rows_;
  return Status::OK();
}

void Table::AppendRowCodes(const std::vector<int32_t>& codes) {
  assert(codes.size() == schema_.num_columns());
  for (size_t i = 0; i < codes.size(); ++i) {
    assert(codes[i] >= 0 &&
           static_cast<size_t>(codes[i]) < dictionaries_[i]->size());
    columns_[i].push_back(codes[i]);
  }
  ++num_rows_;
}

std::vector<Value> Table::GetRow(size_t row) const {
  std::vector<Value> out;
  out.reserve(num_columns());
  for (size_t c = 0; c < num_columns(); ++c) out.push_back(GetValue(row, c));
  return out;
}

Result<Table> Table::Project(const std::vector<size_t>& cols) const {
  std::vector<ColumnSpec> specs;
  specs.reserve(cols.size());
  for (size_t c : cols) {
    if (c >= num_columns()) {
      return Status::OutOfRange(
          StringPrintf("column index %zu out of range (table has %zu)", c,
                       num_columns()));
    }
    specs.push_back(schema_.column(c));
  }
  Table out{Schema(std::move(specs))};
  // Share dictionaries and copy code columns directly.
  for (size_t i = 0; i < cols.size(); ++i) {
    out.dictionaries_[i] = dictionaries_[cols[i]];
    out.columns_[i] = columns_[cols[i]];
  }
  out.num_rows_ = num_rows_;
  return out;
}

Table Table::FilterRows(const std::vector<bool>& keep) const {
  assert(keep.size() == num_rows_);
  Table out;
  out.schema_ = schema_;
  out.dictionaries_ = dictionaries_;
  out.columns_.resize(num_columns());
  size_t kept = static_cast<size_t>(
      std::count(keep.begin(), keep.end(), true));
  for (size_t c = 0; c < num_columns(); ++c) {
    out.columns_[c].reserve(kept);
    for (size_t r = 0; r < num_rows_; ++r) {
      if (keep[r]) out.columns_[c].push_back(columns_[c][r]);
    }
  }
  out.num_rows_ = kept;
  return out;
}

bool Table::MultisetEquals(const Table& other) const {
  if (!(schema_ == other.schema_) || num_rows_ != other.num_rows_) {
    return false;
  }
  // Decode rows to canonical strings and compare multisets. This is a slow
  // path used by tests; correctness over speed.
  auto canonical = [](const Table& t) {
    std::map<std::string, size_t> counts;
    for (size_t r = 0; r < t.num_rows(); ++r) {
      std::string key;
      for (size_t c = 0; c < t.num_columns(); ++c) {
        key += t.GetValue(r, c).ToString();
        key += '\x1f';
      }
      ++counts[key];
    }
    return counts;
  };
  return canonical(*this) == canonical(other);
}

std::string Table::ToString(size_t max_rows) const {
  std::string out = schema_.ToString() + "\n";
  size_t limit = max_rows == 0 ? num_rows_ : std::min(max_rows, num_rows_);
  for (size_t r = 0; r < limit; ++r) {
    std::vector<std::string> cells;
    cells.reserve(num_columns());
    for (size_t c = 0; c < num_columns(); ++c) {
      cells.push_back(GetValue(r, c).ToString());
    }
    out += Join(cells, " | ");
    out += '\n';
  }
  if (limit < num_rows_) {
    out += StringPrintf("... (%zu more rows)\n", num_rows_ - limit);
  }
  return out;
}

}  // namespace incognito
