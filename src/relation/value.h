#ifndef INCOGNITO_RELATION_VALUE_H_
#define INCOGNITO_RELATION_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>

namespace incognito {

/// Logical column types supported by the engine.
enum class DataType {
  kInt64,
  kDouble,
  kString,
};

/// Returns a human-readable type name ("int64", "double", "string").
const char* DataTypeName(DataType type);

/// A dynamically-typed cell value used at table ingest and export
/// boundaries. Inside the engine all columns are dictionary-encoded to dense
/// int32 codes, so Value only appears on the slow path (loading, printing,
/// building hierarchies).
class Value {
 public:
  /// Constructs a NULL value.
  Value() : rep_(Null{}) {}
  /// Constructs typed values. Implicit conversion is intentional here:
  /// Value is a sum type designed to absorb literals at ingest.
  Value(int64_t v) : rep_(v) {}          // NOLINT(google-explicit-constructor)
  Value(double v) : rep_(v) {}           // NOLINT(google-explicit-constructor)
  Value(std::string v) : rep_(std::move(v)) {}  // NOLINT
  Value(const char* v) : rep_(std::string(v)) {}  // NOLINT

  bool is_null() const { return std::holds_alternative<Null>(rep_); }
  bool is_int64() const { return std::holds_alternative<int64_t>(rep_); }
  bool is_double() const { return std::holds_alternative<double>(rep_); }
  bool is_string() const { return std::holds_alternative<std::string>(rep_); }

  /// Typed accessors; behaviour is undefined if the type does not match
  /// (checked with assert in debug builds via std::get).
  int64_t int64() const { return std::get<int64_t>(rep_); }
  double dbl() const { return std::get<double>(rep_); }
  const std::string& str() const { return std::get<std::string>(rep_); }

  /// Renders the value for display/CSV. NULL renders as the empty string.
  std::string ToString() const;

  /// Total order over values: NULL < int64/double (numeric order) < string
  /// (lexicographic). Mixed int64/double compare numerically.
  bool operator==(const Value& other) const;
  bool operator<(const Value& other) const;

  /// Hash consistent with operator==.
  size_t Hash() const;

 private:
  struct Null {
    bool operator==(const Null&) const { return true; }
  };
  std::variant<Null, int64_t, double, std::string> rep_;
};

/// Hash functor for use in unordered containers.
struct ValueHash {
  size_t operator()(const Value& v) const { return v.Hash(); }
};

}  // namespace incognito

#endif  // INCOGNITO_RELATION_VALUE_H_
