#include "relation/schema.h"

#include "common/strings.h"

namespace incognito {

Schema::Schema(std::vector<ColumnSpec> columns) : columns_(std::move(columns)) {}

int Schema::FindColumn(const std::string& name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

Result<size_t> Schema::ColumnIndex(const std::string& name) const {
  int idx = FindColumn(name);
  if (idx < 0) return Status::NotFound("no column named '" + name + "'");
  return static_cast<size_t>(idx);
}

Status Schema::AddColumn(ColumnSpec spec) {
  if (FindColumn(spec.name) >= 0) {
    return Status::AlreadyExists("column '" + spec.name + "' already exists");
  }
  columns_.push_back(std::move(spec));
  return Status::OK();
}

std::string Schema::ToString() const {
  std::vector<std::string> parts;
  parts.reserve(columns_.size());
  for (const ColumnSpec& c : columns_) {
    parts.push_back(c.name + ":" + DataTypeName(c.type));
  }
  return Join(parts, ", ");
}

}  // namespace incognito
