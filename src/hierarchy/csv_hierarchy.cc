#include "hierarchy/csv_hierarchy.h"

#include <fstream>
#include <sstream>

#include "common/strings.h"
#include "hierarchy/builders.h"
#include "robust/safe_io.h"

namespace incognito {

namespace {
/// Rows longer than this are rejected (corrupt-input guard).
constexpr size_t kMaxHierarchyRowBytes = 1 << 20;
}  // namespace

Result<ValueHierarchy> ParseHierarchyCsv(std::string attribute_name,
                                         const std::string& content,
                                         const Dictionary& base,
                                         char separator) {
  TaxonomyHierarchyBuilder builder{attribute_name};
  std::istringstream in(content);
  std::string line;
  size_t line_no = 0;
  size_t width = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.size() > kMaxHierarchyRowBytes) {
      return Status::InvalidArgument(StringPrintf(
          "hierarchy CSV '%s' line %zu is %zu bytes, over the %zu-byte row "
          "limit",
          attribute_name.c_str(), line_no, line.size(),
          kMaxHierarchyRowBytes));
    }
    if (line.find('\0') != std::string::npos) {
      return Status::InvalidArgument(StringPrintf(
          "hierarchy CSV '%s' line %zu contains an embedded NUL byte",
          attribute_name.c_str(), line_no));
    }
    if (StripWhitespace(line).empty()) continue;
    std::vector<std::string> fields = Split(line, separator);
    if (fields.size() < 2) {
      return Status::InvalidArgument(StringPrintf(
          "hierarchy CSV '%s' line %zu: need at least leaf and one "
          "generalization level",
          attribute_name.c_str(), line_no));
    }
    if (width == 0) width = fields.size();
    if (fields.size() != width) {
      return Status::InvalidArgument(StringPrintf(
          "hierarchy CSV '%s' line %zu: %zu columns, expected %zu",
          attribute_name.c_str(), line_no, fields.size(), width));
    }
    // The leaf is matched against the base dictionary through the value's
    // string rendering (the builder keys leaves on labels), so numeric
    // leaves like "53715" match int64 dictionary values.
    std::vector<Value> ancestors;
    ancestors.reserve(width - 1);
    for (size_t c = 1; c < width; ++c) {
      ancestors.emplace_back(fields[c]);
    }
    builder.AddLeaf(Value(fields[0]), std::move(ancestors));
  }
  if (width == 0) {
    return Status::InvalidArgument("hierarchy CSV '" + attribute_name +
                                   "' is empty");
  }
  return builder.Build(base);
}

Result<ValueHierarchy> ReadHierarchyCsv(std::string attribute_name,
                                        const std::string& path,
                                        const Dictionary& base,
                                        char separator,
                                        const RetryPolicy& retry) {
  Result<std::string> content = RetryWithBackoff(
      retry, [&] { return ReadFileToString(path, "hierarchy_csv.read"); });
  INCOGNITO_RETURN_IF_ERROR(content.status());
  return ParseHierarchyCsv(std::move(attribute_name), content.value(), base,
                           separator);
}

std::string HierarchyToCsv(const ValueHierarchy& hierarchy, char separator) {
  std::string out;
  for (size_t base = 0; base < hierarchy.DomainSize(0); ++base) {
    for (size_t level = 0; level < hierarchy.num_levels(); ++level) {
      if (level > 0) out += separator;
      out += hierarchy
                 .LevelValue(level, hierarchy.Generalize(
                                        static_cast<int32_t>(base), level))
                 .ToString();
    }
    out += '\n';
  }
  return out;
}

Status WriteHierarchyCsv(const ValueHierarchy& hierarchy,
                         const std::string& path, char separator) {
  return WriteFileAtomic(path, HierarchyToCsv(hierarchy, separator),
                         "hierarchy_csv.write");
}

}  // namespace incognito
