#ifndef INCOGNITO_HIERARCHY_BUILDERS_H_
#define INCOGNITO_HIERARCHY_BUILDERS_H_

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "hierarchy/hierarchy.h"
#include "relation/dictionary.h"

namespace incognito {

/// Builds a hierarchy from per-level labeling functions. `level_fns[l]` maps
/// a *base* value to its label at level l+1; the induced γ maps are derived
/// by grouping. Fails if the labelings are inconsistent, i.e. two base
/// values share a label at some level but not at a higher one (the domains
/// would not form a chain of many-to-one generalizations).
Result<ValueHierarchy> BuildHierarchyFromFunctions(
    std::string attribute_name, const Dictionary& base,
    const std::vector<std::function<Value(const Value&)>>& level_fns);

/// Builder for explicit categorical taxonomy trees (paper Fig. 2(e,f) and
/// the Adults "taxonomy tree" attributes). Register a root-ward path per
/// leaf value, then Build against the column dictionary.
class TaxonomyHierarchyBuilder {
 public:
  explicit TaxonomyHierarchyBuilder(std::string attribute_name)
      : attribute_name_(std::move(attribute_name)) {}

  /// Registers the generalization path of a leaf: `ancestors[l]` is the
  /// label at level l+1 (ordered leaf-ward to root-ward). All paths must
  /// have the same length.
  TaxonomyHierarchyBuilder& AddLeaf(const Value& leaf,
                                    std::vector<Value> ancestors);

  /// Builds the hierarchy over the given base dictionary. Fails if a
  /// dictionary value has no registered path or path lengths disagree.
  /// Registered leaves absent from the dictionary are ignored.
  Result<ValueHierarchy> Build(const Dictionary& base) const;

 private:
  std::string attribute_name_;
  std::map<std::string, std::vector<Value>> paths_;  // keyed on leaf label
  size_t path_length_ = 0;
  bool length_conflict_ = false;
};

/// One-level hierarchy that suppresses every value to `suppressed_label`
/// (paper "Suppression(1)" attributes, e.g. Sex in Fig. 2(e)).
Result<ValueHierarchy> BuildSuppressionHierarchy(
    std::string attribute_name, const Dictionary& base,
    const Value& suppressed_label = Value("*"));

/// Hierarchy over an integer attribute that groups values into aligned
/// ranges of the given widths (paper's Age: 5-, 10-, 20-year ranges). Widths
/// must be strictly increasing and each must divide the next so the range
/// levels nest. If `add_suppression_top` is true a final "*" level is
/// appended (the Adults Age hierarchy has height 4 = 3 range levels + top).
Result<ValueHierarchy> BuildIntervalHierarchy(
    std::string attribute_name, const Dictionary& base,
    const std::vector<int64_t>& widths, bool add_suppression_top = true);

/// Hierarchy over an integer attribute rendered as a fixed-width digit
/// string; level l replaces the last l digits with '*' (paper's Zipcode:
/// 53715 → 5371* → 537** → ... and Lands End "round each digit"). `levels`
/// is the number of rounding steps; the final step (all digits masked) acts
/// as the suppression top when levels == num_digits.
Result<ValueHierarchy> BuildDigitRoundingHierarchy(std::string attribute_name,
                                                   const Dictionary& base,
                                                   size_t num_digits,
                                                   size_t levels);

/// Hierarchy over ISO "YYYY-MM-DD" date strings: day → month → year → '*'
/// (height 3, matching the Lands End Order-date "Taxonomy Tree(3)").
Result<ValueHierarchy> BuildDateHierarchy(std::string attribute_name,
                                          const Dictionary& base);

}  // namespace incognito

#endif  // INCOGNITO_HIERARCHY_BUILDERS_H_
