#include "hierarchy/validation.h"

#include <unordered_set>
#include <vector>

#include "common/strings.h"

namespace incognito {

Status CheckWellFormed(const ValueHierarchy& h,
                       const HierarchyCheckOptions& options) {
  if (h.num_levels() == 0) {
    return Status::InvalidArgument("hierarchy has no levels");
  }
  const std::string& name = h.attribute_name();

  // Labels must be unique within a level (a domain is a set of values).
  for (size_t l = 0; l < h.num_levels(); ++l) {
    std::unordered_set<std::string> seen;
    for (size_t c = 0; c < h.DomainSize(l); ++c) {
      const Value& v = h.LevelValue(l, static_cast<int32_t>(c));
      if (!seen.insert(v.ToString()).second) {
        return Status::InvalidArgument(
            StringPrintf("hierarchy '%s': duplicate label '%s' at level %zu",
                         name.c_str(), v.ToString().c_str(), l));
      }
    }
  }

  if (options.require_surjective) {
    for (size_t l = 0; l + 1 < h.num_levels(); ++l) {
      std::vector<bool> hit(h.DomainSize(l + 1), false);
      for (size_t c = 0; c < h.DomainSize(l); ++c) {
        hit[static_cast<size_t>(h.Parent(l, static_cast<int32_t>(c)))] = true;
      }
      for (size_t p = 0; p < hit.size(); ++p) {
        if (!hit[p]) {
          return Status::InvalidArgument(StringPrintf(
              "hierarchy '%s': level-%zu value '%s' is not the "
              "generalization of any level-%zu value",
              name.c_str(), l + 1,
              h.LevelValue(l + 1, static_cast<int32_t>(p)).ToString().c_str(),
              l));
        }
      }
    }
  }

  if (options.require_single_root && h.DomainSize(h.height()) != 1) {
    return Status::InvalidArgument(StringPrintf(
        "hierarchy '%s': most general domain has %zu values, expected 1",
        name.c_str(), h.DomainSize(h.height())));
  }
  return Status::OK();
}

Status CheckMatchesDictionary(const ValueHierarchy& h,
                              const Dictionary& dict) {
  if (h.DomainSize(0) != dict.size()) {
    return Status::FailedPrecondition(StringPrintf(
        "hierarchy '%s': base domain has %zu values but column dictionary "
        "has %zu (hierarchies must be built after all data is loaded)",
        h.attribute_name().c_str(), h.DomainSize(0), dict.size()));
  }
  for (size_t c = 0; c < dict.size(); ++c) {
    if (!(h.LevelValue(0, static_cast<int32_t>(c)) ==
          dict.value(static_cast<int32_t>(c)))) {
      return Status::FailedPrecondition(StringPrintf(
          "hierarchy '%s': base value at code %zu is '%s' but column "
          "dictionary has '%s'",
          h.attribute_name().c_str(), c,
          h.LevelValue(0, static_cast<int32_t>(c)).ToString().c_str(),
          dict.value(static_cast<int32_t>(c)).ToString().c_str()));
    }
  }
  return Status::OK();
}

}  // namespace incognito
