#include "hierarchy/hierarchy.h"

#include <cassert>
#include <numeric>

#include "common/strings.h"

namespace incognito {

int32_t ValueHierarchy::GeneralizeFrom(size_t from_level, int32_t code,
                                       size_t to_level) const {
  assert(from_level <= to_level);
  while (from_level < to_level) {
    code = Parent(from_level, code);
    ++from_level;
  }
  return code;
}

std::vector<int32_t> ValueHierarchy::BaseCodesUnder(size_t level,
                                                    int32_t code) const {
  std::vector<int32_t> out;
  const std::vector<int32_t>& map = base_to_level_[level];
  for (size_t base = 0; base < map.size(); ++base) {
    if (map[base] == code) out.push_back(static_cast<int32_t>(base));
  }
  return out;
}

std::string ValueHierarchy::ToString() const {
  std::string out = "hierarchy '" + attribute_name_ + "' (height " +
                    StringPrintf("%zu", height()) + ")\n";
  for (size_t l = 0; l < num_levels(); ++l) {
    out += StringPrintf("  level %zu (%zu values):", l, DomainSize(l));
    size_t limit = std::min<size_t>(DomainSize(l), 12);
    for (size_t c = 0; c < limit; ++c) {
      out += ' ';
      out += level_values_[l][c].ToString();
    }
    if (limit < DomainSize(l)) out += " ...";
    out += '\n';
  }
  return out;
}

Result<ValueHierarchy> ValueHierarchy::Create(
    std::string attribute_name, std::vector<std::vector<Value>> level_values,
    std::vector<std::vector<int32_t>> parents) {
  if (level_values.empty()) {
    return Status::InvalidArgument("hierarchy must have at least one level");
  }
  if (parents.size() + 1 != level_values.size()) {
    return Status::InvalidArgument(StringPrintf(
        "hierarchy '%s': %zu parent maps but %zu levels (need levels-1)",
        attribute_name.c_str(), parents.size(), level_values.size()));
  }
  for (size_t l = 0; l < parents.size(); ++l) {
    if (parents[l].size() != level_values[l].size()) {
      return Status::InvalidArgument(StringPrintf(
          "hierarchy '%s': parent map at level %zu has %zu entries, domain "
          "has %zu values",
          attribute_name.c_str(), l, parents[l].size(),
          level_values[l].size()));
    }
    for (int32_t p : parents[l]) {
      if (p < 0 || static_cast<size_t>(p) >= level_values[l + 1].size()) {
        return Status::OutOfRange(StringPrintf(
            "hierarchy '%s': parent code %d at level %zu out of range",
            attribute_name.c_str(), p, l));
      }
    }
  }

  ValueHierarchy h;
  h.attribute_name_ = std::move(attribute_name);
  h.level_values_ = std::move(level_values);
  h.parents_ = std::move(parents);

  // Precompute base→level composition tables.
  size_t base_size = h.level_values_[0].size();
  h.base_to_level_.resize(h.num_levels());
  h.base_to_level_[0].resize(base_size);
  std::iota(h.base_to_level_[0].begin(), h.base_to_level_[0].end(), 0);
  for (size_t l = 1; l < h.num_levels(); ++l) {
    h.base_to_level_[l].resize(base_size);
    for (size_t b = 0; b < base_size; ++b) {
      h.base_to_level_[l][b] =
          h.parents_[l - 1][static_cast<size_t>(h.base_to_level_[l - 1][b])];
    }
  }
  return h;
}

}  // namespace incognito
