#ifndef INCOGNITO_HIERARCHY_CSV_HIERARCHY_H_
#define INCOGNITO_HIERARCHY_CSV_HIERARCHY_H_

#include <string>

#include "common/status.h"
#include "hierarchy/hierarchy.h"
#include "relation/dictionary.h"
#include "robust/retry.h"

namespace incognito {

/// Reads a generalization hierarchy from the de-facto standard CSV format
/// used by anonymization toolkits (one row per leaf value, columns from
/// the leaf to the most general label):
///
///   53715;5371*;537**
///   53710;5371*;537**
///   53706;5370*;537**
///
/// Rows must all have the same width; every value of `base` must appear
/// in column 0 of some row (extra rows are ignored, mirroring
/// TaxonomyHierarchyBuilder).
Result<ValueHierarchy> ParseHierarchyCsv(std::string attribute_name,
                                         const std::string& content,
                                         const Dictionary& base,
                                         char separator = ';');

/// ParseHierarchyCsv reading from a file. `retry` bounds retry-with-
/// backoff for transient I/O errors; the default never retries (failed
/// opens surface immediately, as the fault-injection tests expect).
Result<ValueHierarchy> ReadHierarchyCsv(std::string attribute_name,
                                        const std::string& path,
                                        const Dictionary& base,
                                        char separator = ';',
                                        const RetryPolicy& retry =
                                            RetryPolicy::None());

/// Serializes a hierarchy into the same CSV format (one row per base
/// value, leaf-to-root). Round-trips with ParseHierarchyCsv.
std::string HierarchyToCsv(const ValueHierarchy& hierarchy,
                           char separator = ';');

/// HierarchyToCsv writing to a file.
Status WriteHierarchyCsv(const ValueHierarchy& hierarchy,
                         const std::string& path, char separator = ';');

}  // namespace incognito

#endif  // INCOGNITO_HIERARCHY_CSV_HIERARCHY_H_
