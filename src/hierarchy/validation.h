#ifndef INCOGNITO_HIERARCHY_VALIDATION_H_
#define INCOGNITO_HIERARCHY_VALIDATION_H_

#include "common/status.h"
#include "hierarchy/hierarchy.h"
#include "relation/dictionary.h"

namespace incognito {

/// Options for hierarchy validation.
struct HierarchyCheckOptions {
  /// Require the most general domain to contain a single value (a unique
  /// sink of the DGH chain, as in all the paper's example hierarchies).
  bool require_single_root = true;
  /// Require each γ to be surjective: every value of a domain must be the
  /// generalization of some value one level down (domains are exactly the
  /// images of the base domain, per the paper's value-generalization trees).
  bool require_surjective = true;
};

/// Deep structural checks on a hierarchy (the cheap shape checks already run
/// in ValueHierarchy::Create). Verifies label uniqueness per level,
/// surjectivity, and the single-root property.
Status CheckWellFormed(const ValueHierarchy& h,
                       const HierarchyCheckOptions& options = {});

/// Verifies that the hierarchy's base domain matches a table column's
/// dictionary code-for-code (same size, same values, same order), which is
/// the precondition for using Generalize() on that column's codes.
Status CheckMatchesDictionary(const ValueHierarchy& h, const Dictionary& dict);

}  // namespace incognito

#endif  // INCOGNITO_HIERARCHY_VALIDATION_H_
