#ifndef INCOGNITO_HIERARCHY_HIERARCHY_H_
#define INCOGNITO_HIERARCHY_HIERARCHY_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "relation/dictionary.h"
#include "relation/value.h"

namespace incognito {

/// A domain generalization hierarchy (DGH) together with its induced value
/// generalization hierarchy (paper Section 2, Figure 2).
///
/// Levels are numbered 0 (the base, most specific domain — aligned with the
/// dictionary codes of a table column) through height() (the most general
/// domain). Each level has its own value dictionary; the many-to-one value
/// generalization function γ between consecutive domains is stored as a
/// parent-code array per level, and the compositions γ+ from the base level
/// are precomputed so Generalize() is a single array lookup.
class ValueHierarchy {
 public:
  ValueHierarchy() = default;

  /// The number of generalization steps (edges in the DGH chain). The
  /// hierarchy has height()+1 domains.
  size_t height() const { return parents_.size(); }

  /// The number of domains (levels), i.e. height() + 1.
  size_t num_levels() const { return level_values_.size(); }

  /// Number of distinct values in the domain at `level`.
  size_t DomainSize(size_t level) const { return level_values_[level].size(); }

  /// γ: maps a code at `level` to its code at `level`+1.
  /// Requires level < height().
  int32_t Parent(size_t level, int32_t code) const {
    return parents_[level][static_cast<size_t>(code)];
  }

  /// γ+ from the base: maps a level-0 code directly to its code at
  /// `to_level`. O(1) via precomputed composition tables.
  int32_t Generalize(int32_t base_code, size_t to_level) const {
    return base_to_level_[to_level][static_cast<size_t>(base_code)];
  }

  /// γ+ between arbitrary levels: maps a code at `from_level` to its code at
  /// `to_level`. Requires from_level <= to_level.
  int32_t GeneralizeFrom(size_t from_level, int32_t code,
                         size_t to_level) const;

  /// The whole base→to_level composition table (hot path for rollup).
  const std::vector<int32_t>& BaseToLevelMap(size_t to_level) const {
    return base_to_level_[to_level];
  }

  /// The label of a code in the domain at `level`.
  const Value& LevelValue(size_t level, int32_t code) const {
    return level_values_[level][static_cast<size_t>(code)];
  }

  /// All labels at one level.
  const std::vector<Value>& level_values(size_t level) const {
    return level_values_[level];
  }

  /// Returns true iff `general` (a code at `general_level`) is the γ+ image
  /// of `base_code`; i.e. general generalizes the base value.
  bool IsAncestor(int32_t base_code, size_t general_level,
                  int32_t general) const {
    return Generalize(base_code, general_level) == general;
  }

  /// Returns the base-level codes whose γ+ image at `level` equals `code`
  /// (the subtree of the value generalization hierarchy rooted there).
  std::vector<int32_t> BaseCodesUnder(size_t level, int32_t code) const;

  const std::string& attribute_name() const { return attribute_name_; }

  /// Human-readable dump of all levels for diagnostics.
  std::string ToString() const;

  /// Constructs a hierarchy from explicit per-level label tables and parent
  /// maps. `level_values[l]` are the labels of the domain at level l;
  /// `parents[l][c]` is the level-(l+1) code of level-l code c. Validates
  /// shape (see also CheckWellFormed in validation.h for deep checks).
  static Result<ValueHierarchy> Create(
      std::string attribute_name, std::vector<std::vector<Value>> level_values,
      std::vector<std::vector<int32_t>> parents);

 private:
  std::string attribute_name_;
  // parents_[l][code_at_l] -> code at l+1; size height().
  std::vector<std::vector<int32_t>> parents_;
  // base_to_level_[l][base_code] -> code at l; size num_levels();
  // base_to_level_[0] is the identity.
  std::vector<std::vector<int32_t>> base_to_level_;
  // level_values_[l][code] -> display label; size num_levels().
  std::vector<std::vector<Value>> level_values_;
};

}  // namespace incognito

#endif  // INCOGNITO_HIERARCHY_HIERARCHY_H_
