#include "hierarchy/builders.h"

#include <unordered_map>

#include "common/strings.h"

namespace incognito {

Result<ValueHierarchy> BuildHierarchyFromFunctions(
    std::string attribute_name, const Dictionary& base,
    const std::vector<std::function<Value(const Value&)>>& level_fns) {
  size_t base_size = base.size();
  if (base_size == 0) {
    return Status::InvalidArgument("hierarchy '" + attribute_name +
                                   "': base domain is empty");
  }
  size_t num_gen_levels = level_fns.size();

  // level_values[0] mirrors the base dictionary.
  std::vector<std::vector<Value>> level_values(num_gen_levels + 1);
  std::vector<std::vector<int32_t>> parents(num_gen_levels);
  level_values[0].reserve(base_size);
  for (size_t b = 0; b < base_size; ++b) {
    level_values[0].push_back(base.value(static_cast<int32_t>(b)));
  }

  // base_at_level[b] = code of base value b in the previous level processed.
  std::vector<int32_t> prev_code(base_size);
  for (size_t b = 0; b < base_size; ++b) {
    prev_code[b] = static_cast<int32_t>(b);
  }

  for (size_t l = 0; l < num_gen_levels; ++l) {
    Dictionary level_dict;
    std::vector<int32_t> cur_code(base_size);
    parents[l].assign(level_values[l].size(), -1);
    for (size_t b = 0; b < base_size; ++b) {
      Value label = level_fns[l](base.value(static_cast<int32_t>(b)));
      cur_code[b] = level_dict.GetOrInsert(label);
      int32_t p = prev_code[b];
      if (parents[l][static_cast<size_t>(p)] == -1) {
        parents[l][static_cast<size_t>(p)] = cur_code[b];
      } else if (parents[l][static_cast<size_t>(p)] != cur_code[b]) {
        return Status::InvalidArgument(StringPrintf(
            "hierarchy '%s': inconsistent labeling at level %zu — value '%s' "
            "groups with two different level-%zu labels",
            attribute_name.c_str(),
            l + 1, base.value(static_cast<int32_t>(b)).ToString().c_str(),
            l + 1));
      }
    }
    level_values[l + 1].reserve(level_dict.size());
    for (size_t c = 0; c < level_dict.size(); ++c) {
      level_values[l + 1].push_back(level_dict.value(static_cast<int32_t>(c)));
    }
    prev_code = std::move(cur_code);
  }

  return ValueHierarchy::Create(std::move(attribute_name),
                                std::move(level_values), std::move(parents));
}

TaxonomyHierarchyBuilder& TaxonomyHierarchyBuilder::AddLeaf(
    const Value& leaf, std::vector<Value> ancestors) {
  if (path_length_ == 0 && paths_.empty()) {
    path_length_ = ancestors.size();
  } else if (ancestors.size() != path_length_) {
    length_conflict_ = true;
  }
  paths_[leaf.ToString()] = std::move(ancestors);
  return *this;
}

Result<ValueHierarchy> TaxonomyHierarchyBuilder::Build(
    const Dictionary& base) const {
  if (length_conflict_) {
    return Status::InvalidArgument("taxonomy '" + attribute_name_ +
                                   "': leaf paths have differing lengths");
  }
  if (path_length_ == 0) {
    return Status::InvalidArgument("taxonomy '" + attribute_name_ +
                                   "': no generalization levels registered");
  }
  // Verify every dictionary value has a path before building.
  for (size_t b = 0; b < base.size(); ++b) {
    const Value& leaf = base.value(static_cast<int32_t>(b));
    if (paths_.find(leaf.ToString()) == paths_.end()) {
      return Status::NotFound("taxonomy '" + attribute_name_ +
                              "': no path registered for value '" +
                              leaf.ToString() + "'");
    }
  }
  std::vector<std::function<Value(const Value&)>> fns;
  fns.reserve(path_length_);
  for (size_t l = 0; l < path_length_; ++l) {
    fns.push_back([this, l](const Value& leaf) {
      return paths_.at(leaf.ToString())[l];
    });
  }
  return BuildHierarchyFromFunctions(attribute_name_, base, fns);
}

Result<ValueHierarchy> BuildSuppressionHierarchy(std::string attribute_name,
                                                 const Dictionary& base,
                                                 const Value& label) {
  std::vector<std::function<Value(const Value&)>> fns = {
      [label](const Value&) { return label; }};
  return BuildHierarchyFromFunctions(std::move(attribute_name), base, fns);
}

Result<ValueHierarchy> BuildIntervalHierarchy(
    std::string attribute_name, const Dictionary& base,
    const std::vector<int64_t>& widths, bool add_suppression_top) {
  for (size_t b = 0; b < base.size(); ++b) {
    if (!base.value(static_cast<int32_t>(b)).is_int64()) {
      return Status::InvalidArgument(
          "interval hierarchy '" + attribute_name +
          "': base domain contains non-integer value '" +
          base.value(static_cast<int32_t>(b)).ToString() + "'");
    }
  }
  for (size_t i = 0; i < widths.size(); ++i) {
    if (widths[i] <= 0) {
      return Status::InvalidArgument("interval hierarchy '" + attribute_name +
                                     "': widths must be positive");
    }
    if (i > 0 && (widths[i] <= widths[i - 1] || widths[i] % widths[i - 1] != 0)) {
      return Status::InvalidArgument(
          "interval hierarchy '" + attribute_name +
          "': widths must be strictly increasing and nested (each divides "
          "the next)");
    }
  }
  std::vector<std::function<Value(const Value&)>> fns;
  for (int64_t w : widths) {
    fns.push_back([w](const Value& v) {
      // Floor-divide so negative values align correctly too.
      int64_t x = v.int64();
      int64_t lo = (x >= 0 ? x / w : (x - w + 1) / w) * w;
      return Value(StringPrintf("[%lld-%lld]", static_cast<long long>(lo),
                                static_cast<long long>(lo + w - 1)));
    });
  }
  if (add_suppression_top) {
    fns.push_back([](const Value&) { return Value("*"); });
  }
  return BuildHierarchyFromFunctions(std::move(attribute_name), base, fns);
}

Result<ValueHierarchy> BuildDigitRoundingHierarchy(std::string attribute_name,
                                                   const Dictionary& base,
                                                   size_t num_digits,
                                                   size_t levels) {
  if (levels == 0 || levels > num_digits) {
    return Status::InvalidArgument(StringPrintf(
        "digit hierarchy '%s': levels (%zu) must be in [1, num_digits=%zu]",
        attribute_name.c_str(), levels, num_digits));
  }
  int64_t max_representable = 1;
  for (size_t d = 0; d < num_digits; ++d) max_representable *= 10;
  for (size_t b = 0; b < base.size(); ++b) {
    const Value& v = base.value(static_cast<int32_t>(b));
    if (!v.is_int64() || v.int64() < 0 || v.int64() >= max_representable) {
      return Status::InvalidArgument(StringPrintf(
          "digit hierarchy '%s': value '%s' is not an integer in [0, 10^%zu)",
          attribute_name.c_str(), v.ToString().c_str(), num_digits));
    }
  }
  std::vector<std::function<Value(const Value&)>> fns;
  for (size_t l = 1; l <= levels; ++l) {
    fns.push_back([num_digits, l](const Value& v) {
      std::string digits =
          StringPrintf("%0*lld", static_cast<int>(num_digits),
                       static_cast<long long>(v.int64()));
      for (size_t i = 0; i < l; ++i) digits[num_digits - 1 - i] = '*';
      return Value(digits);
    });
  }
  return BuildHierarchyFromFunctions(std::move(attribute_name), base, fns);
}

Result<ValueHierarchy> BuildDateHierarchy(std::string attribute_name,
                                          const Dictionary& base) {
  for (size_t b = 0; b < base.size(); ++b) {
    const Value& v = base.value(static_cast<int32_t>(b));
    if (!v.is_string() || v.str().size() != 10 || v.str()[4] != '-' ||
        v.str()[7] != '-') {
      return Status::InvalidArgument(
          "date hierarchy '" + attribute_name + "': value '" + v.ToString() +
          "' is not an ISO YYYY-MM-DD date");
    }
  }
  std::vector<std::function<Value(const Value&)>> fns = {
      [](const Value& v) { return Value(v.str().substr(0, 7)); },   // YYYY-MM
      [](const Value& v) { return Value(v.str().substr(0, 4)); },   // YYYY
      [](const Value&) { return Value("*"); },
  };
  return BuildHierarchyFromFunctions(std::move(attribute_name), base, fns);
}

}  // namespace incognito
