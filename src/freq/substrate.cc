#include "freq/substrate.h"

#include <cassert>
#include <cstdlib>
#include <cstring>

namespace incognito {

const char* SubstrateModeName(SubstrateMode mode) {
  switch (mode) {
    case SubstrateMode::kHash:
      return "hash";
    case SubstrateMode::kRadix:
      return "radix";
    case SubstrateMode::kAuto:
      return "auto";
  }
  return "?";
}

bool ParseSubstrateMode(const std::string& text, SubstrateMode* out) {
  if (text == "hash") {
    *out = SubstrateMode::kHash;
  } else if (text == "radix") {
    *out = SubstrateMode::kRadix;
  } else if (text == "auto") {
    *out = SubstrateMode::kAuto;
  } else {
    return false;
  }
  return true;
}

const char* SubstrateChoiceName(SubstrateChoice choice) {
  switch (choice) {
    case SubstrateChoice::kHashMap:
      return "hash-map";
    case SubstrateChoice::kRadixSort:
      return "radix-sort";
    case SubstrateChoice::kFlatMap:
      return "flat-map";
  }
  return "?";
}

size_t EstimateKeySpace(const std::vector<size_t>& cardinalities) {
  constexpr size_t kCap = ~size_t{0};
  size_t space = 1;
  for (size_t c : cardinalities) {
    if (c == 0) continue;
    if (space > kCap / c) return kCap;
    space *= c;
  }
  return space;
}

SubstrateChoice ChooseSubstrate(SubstrateMode mode, bool packed, size_t rows,
                                size_t key_space) {
  switch (mode) {
    case SubstrateMode::kHash:
      return SubstrateChoice::kHashMap;
    case SubstrateMode::kRadix:
      return packed ? SubstrateChoice::kRadixSort : SubstrateChoice::kFlatMap;
    case SubstrateMode::kAuto:
      break;
  }
  if (rows < kAutoMinRadixRows || key_space <= kAutoMaxHashKeySpace) {
    return SubstrateChoice::kHashMap;
  }
  return packed ? SubstrateChoice::kRadixSort : SubstrateChoice::kFlatMap;
}

SubstrateChoice ResolveSubstrate(SubstrateMode mode, bool packed, size_t rows,
                                 size_t key_space) {
  if (mode == SubstrateMode::kAuto) {
    if (const char* env = std::getenv("INCOGNITO_SUBSTRATE")) {
      SubstrateMode forced;
      if (ParseSubstrateMode(env, &forced)) mode = forced;
    }
  }
  return ChooseSubstrate(mode, packed, rows, key_space);
}

void GatherPackedKeys(const std::vector<const int32_t*>& cols,
                      const std::vector<const int32_t*>& maps,
                      const KeyCodec& codec, size_t begin, size_t end,
                      std::vector<uint64_t>* out) {
  assert(codec.packed());
  const size_t n = codec.num_dims();
  const size_t count = end - begin;
  out->assign(count, 0);
  uint64_t* keys = out->data();
  for (size_t d = 0; d < n; ++d) {
    const uint8_t bits = codec.bits(d);
    const int32_t* col = cols[d] + begin;
    const int32_t* map = maps[d];
    for (size_t i = 0; i < count; ++i) {
      const uint64_t code = static_cast<uint64_t>(map[col[i]]);
      assert(bits >= 64 || (code >> bits) == 0);
      keys[i] = (keys[i] << bits) | code;
    }
  }
}

namespace {

/// Histograms every 8-bit digit of the low `passes` bytes in one pass.
void DigitHistograms(const uint64_t* keys, size_t n, size_t passes,
                     size_t (*hist)[256]) {
  std::memset(hist, 0, passes * 256 * sizeof(size_t));
  for (size_t i = 0; i < n; ++i) {
    uint64_t k = keys[i];
    for (size_t p = 0; p < passes; ++p) {
      ++hist[p][k & 0xff];
      k >>= 8;
    }
  }
}

/// True when the digit's histogram puts every key in one bucket, so the
/// scatter pass would be the identity permutation.
bool SingleBucket(const size_t* h, size_t n) {
  for (size_t b = 0; b < 256; ++b) {
    if (h[b] == n) return true;
    if (h[b] != 0) return false;
  }
  return n == 0;
}

}  // namespace

bool RadixSortKeys(std::vector<uint64_t>& keys, std::vector<uint64_t>& scratch,
                   size_t total_bits, const std::function<bool()>& tick) {
  const size_t n = keys.size();
  const size_t passes = (total_bits + 7) / 8;
  if (n < 2 || passes == 0) return true;
  scratch.resize(n);
  size_t hist[8][256];
  DigitHistograms(keys.data(), n, passes, hist);
  uint64_t* src = keys.data();
  uint64_t* dst = scratch.data();
  bool in_keys = true;
  for (size_t p = 0; p < passes; ++p) {
    if (SingleBucket(hist[p], n)) continue;
    if (tick && !tick()) {
      if (!in_keys) keys.swap(scratch);
      return false;
    }
    size_t offsets[256];
    size_t sum = 0;
    for (size_t b = 0; b < 256; ++b) {
      offsets[b] = sum;
      sum += hist[p][b];
    }
    const size_t shift = p * 8;
    for (size_t i = 0; i < n; ++i) {
      dst[offsets[(src[i] >> shift) & 0xff]++] = src[i];
    }
    std::swap(src, dst);
    in_keys = !in_keys;
  }
  if (!in_keys) keys.swap(scratch);
  return true;
}

bool RadixSortCounted(std::vector<std::pair<uint64_t, int64_t>>& items,
                      std::vector<std::pair<uint64_t, int64_t>>& scratch,
                      size_t total_bits, const std::function<bool()>& tick) {
  using Item = std::pair<uint64_t, int64_t>;
  const size_t n = items.size();
  const size_t passes = (total_bits + 7) / 8;
  if (n < 2 || passes == 0) return true;
  scratch.resize(n);
  size_t hist[8][256];
  std::memset(hist, 0, passes * 256 * sizeof(size_t));
  for (size_t i = 0; i < n; ++i) {
    uint64_t k = items[i].first;
    for (size_t p = 0; p < passes; ++p) {
      ++hist[p][k & 0xff];
      k >>= 8;
    }
  }
  Item* src = items.data();
  Item* dst = scratch.data();
  bool in_items = true;
  for (size_t p = 0; p < passes; ++p) {
    if (SingleBucket(hist[p], n)) continue;
    if (tick && !tick()) {
      if (!in_items) items.swap(scratch);
      return false;
    }
    size_t offsets[256];
    size_t sum = 0;
    for (size_t b = 0; b < 256; ++b) {
      offsets[b] = sum;
      sum += hist[p][b];
    }
    const size_t shift = p * 8;
    for (size_t i = 0; i < n; ++i) {
      dst[offsets[(src[i].first >> shift) & 0xff]++] = src[i];
    }
    std::swap(src, dst);
    in_items = !in_items;
  }
  if (!in_items) items.swap(scratch);
  return true;
}

size_t ExtractGroups(const std::vector<uint64_t>& keys,
                     std::vector<std::pair<uint64_t, int64_t>>* out) {
  size_t unique = 0;
  for (size_t i = 0; i < keys.size(); ++i) {
    if (i == 0 || keys[i] != keys[i - 1]) ++unique;
  }
  out->reserve(out->size() + unique);
  for (size_t i = 0; i < keys.size();) {
    const uint64_t key = keys[i];
    int64_t count = 0;
    for (; i < keys.size() && keys[i] == key; ++i) ++count;
    out->emplace_back(key, count);
  }
  return unique;
}

namespace {

uint64_t FnvCodes(const int32_t* codes, size_t n) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (size_t i = 0; i < n; ++i) {
    h ^= static_cast<uint32_t>(codes[i]);
    h *= 0x100000001b3ULL;
  }
  return h;
}

size_t NextPow2(size_t n) {
  size_t p = 16;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

FlatCodeMap::FlatCodeMap(size_t width, size_t expected) : width_(width) {
  // Load factor stays below 1/2: the slot table holds at least twice the
  // expected group count.
  slots_.assign(NextPow2(expected * 2 + 16), 0);
  mask_ = slots_.size() - 1;
}

void FlatCodeMap::Add(const int32_t* codes, int64_t count) {
  size_t slot = static_cast<size_t>(FnvCodes(codes, width_)) & mask_;
  for (;;) {
    const uint32_t id = slots_[slot];
    if (id == 0) break;
    const int32_t* stored = arena_.data() + (id - 1) * width_;
    if (std::memcmp(stored, codes, width_ * sizeof(int32_t)) == 0) {
      counts_[id - 1] += count;
      return;
    }
    slot = (slot + 1) & mask_;
  }
  arena_.insert(arena_.end(), codes, codes + width_);
  counts_.push_back(count);
  slots_[slot] = static_cast<uint32_t>(counts_.size());
  if (counts_.size() * 2 >= slots_.size()) Grow();
}

void FlatCodeMap::Grow() {
  slots_.assign(slots_.size() * 2, 0);
  mask_ = slots_.size() - 1;
  for (size_t g = 0; g < counts_.size(); ++g) {
    const int32_t* codes = arena_.data() + g * width_;
    size_t slot = static_cast<size_t>(FnvCodes(codes, width_)) & mask_;
    while (slots_[slot] != 0) slot = (slot + 1) & mask_;
    slots_[slot] = static_cast<uint32_t>(g + 1);
  }
}

size_t FlatCodeMap::MemoryBytes() const {
  return arena_.capacity() * sizeof(int32_t) +
         counts_.capacity() * sizeof(int64_t) +
         slots_.capacity() * sizeof(uint32_t);
}

void FlatCodeMap::AppendTo(
    std::vector<std::pair<std::vector<int32_t>, int64_t>>* out) const {
  out->reserve(out->size() + counts_.size());
  for (size_t g = 0; g < counts_.size(); ++g) {
    const int32_t* codes = arena_.data() + g * width_;
    out->emplace_back(std::vector<int32_t>(codes, codes + width_), counts_[g]);
  }
}

}  // namespace incognito
