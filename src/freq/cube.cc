#include "freq/cube.h"

#include <algorithm>
#include <cassert>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <set>

#include "core/worker_pool.h"
#include "obs/obs.h"
#include "robust/fault_injector.h"

namespace incognito {

uint32_t ZeroGenCube::MaskOf(const std::vector<int32_t>& dims) {
  uint32_t mask = 0;
  for (int32_t d : dims) mask |= 1u << d;
  return mask;
}

namespace {

SubsetNode ZeroNodeForMask(uint32_t mask) {
  SubsetNode node;
  for (int32_t d = 0; d < 32; ++d) {
    if (mask & (1u << d)) {
      node.dims.push_back(d);
      node.levels.push_back(0);
    }
  }
  return node;
}

}  // namespace

ZeroGenCube ZeroGenCube::Build(const Table& table, const QuasiIdentifier& qid,
                               BuildInfo* info,
                               ExecutionGovernor* governor,
                               SubstrateMode substrate) {
  INCOGNITO_SPAN("cube.build");
  INCOGNITO_PHASE_TIMER("phase.cube_build_seconds");
  INCOGNITO_COUNT("cube.builds");
  const size_t n = qid.size();
  assert(n >= 1 && n <= 24);
  ZeroGenCube cube;
  BuildInfo local;

  // Charges a freshly materialized frequency set against the governor's
  // memory budget; false stops the build (trip is latched in the governor).
  auto charge = [&](const FrequencySet& fs) {
    if (governor == nullptr) return true;
    if (!governor->Check().ok()) return false;
    // Fault site "cube.build": an injected allocation failure while
    // materializing a cube subset (the root scan or a projection) latches
    // like a refused charge and stops the build.
    if (INCOGNITO_FAULT_FIRED("cube.build")) {
      governor->LatchInjectedFailure("cube.build");
      return false;
    }
    return governor->ChargeMemory(static_cast<int64_t>(fs.MemoryBytes()))
        .ok();
  };

  const uint32_t full = (1u << n) - 1;  // n <= 24, so the shift is safe
  auto root = cube.sets_.emplace(
      full, FrequencySet::Compute(table, qid, ZeroNodeForMask(full),
                                  substrate));
  local.table_scans = 1;
  bool tripped = !charge(root.first->second);
  if (tripped) cube.sets_.clear();

  // Process masks in decreasing popcount order; each mask is aggregated
  // from the already-computed superset with the fewest groups.
  std::vector<uint32_t> masks;
  for (uint32_t m = 1; m < full; ++m) masks.push_back(m);
  std::sort(masks.begin(), masks.end(), [](uint32_t a, uint32_t b) {
    int pa = __builtin_popcount(a), pb = __builtin_popcount(b);
    if (pa != pb) return pa > pb;
    return a < b;
  });
  for (uint32_t m : masks) {
    if (tripped) break;
    // Candidate parents: m plus one attribute not in m.
    const FrequencySet* best = nullptr;
    for (size_t d = 0; d < n; ++d) {
      uint32_t parent = m | (1u << d);
      if (parent == m) continue;
      auto it = cube.sets_.find(parent);
      if (it != cube.sets_.end() &&
          (best == nullptr || it->second.NumGroups() < best->NumGroups())) {
        best = &it->second;
      }
    }
    assert(best != nullptr);
    auto inserted = cube.sets_.emplace(
        m, best->ProjectTo(ZeroNodeForMask(m), qid, substrate));
    ++local.projections;
    if (!charge(inserted.first->second)) {
      // The just-built set was refused: drop it (it was never charged) and
      // stop; earlier sets stay charged until ReleaseMemory.
      cube.sets_.erase(inserted.first);
      tripped = true;
    }
  }

  INCOGNITO_COUNT_ADD("cube.subsets",
                      static_cast<int64_t>(cube.sets_.size()));
  local.num_subsets = cube.sets_.size();
  for (const auto& [mask, fs] : cube.sets_) {
    (void)mask;
    local.total_groups += fs.NumGroups();
    local.total_bytes += fs.MemoryBytes();
  }
  if (info != nullptr) *info = local;
  return cube;
}

ZeroGenCube ZeroGenCube::BuildParallel(const Table& table,
                                       const QuasiIdentifier& qid,
                                       WorkerPool& pool, BuildInfo* info,
                                       ExecutionGovernor* governor,
                                       SubstrateMode substrate) {
  INCOGNITO_SPAN("cube.build");
  INCOGNITO_PHASE_TIMER("phase.cube_build_seconds");
  INCOGNITO_COUNT("cube.builds");
  INCOGNITO_COUNT("cube.parallel_builds");
  const size_t n = qid.size();
  assert(n >= 1 && n <= 24);
  ZeroGenCube cube;
  BuildInfo local;
  const uint32_t full = (1u << n) - 1;

  // Root: one parallel scan of T (the cube's only table access). A trip
  // inside the scan latches the governor and yields an empty set; the
  // main-thread charge below observes the latch via Check().
  FrequencySet root_fs = FrequencySet::ComputeParallel(
      table, qid, ZeroNodeForMask(full), pool, governor, substrate);
  local.table_scans = 1;

  // Same root charge protocol as the serial Build, fault site included.
  bool tripped = false;
  int64_t root_bytes = 0;
  if (governor != nullptr) {
    if (!governor->Check().ok()) {
      tripped = true;
    } else if (INCOGNITO_FAULT_FIRED("cube.build")) {
      governor->LatchInjectedFailure("cube.build");
      tripped = true;
    } else {
      root_bytes = static_cast<int64_t>(root_fs.MemoryBytes());
      if (!governor->ChargeMemory(root_bytes).ok()) {
        root_bytes = 0;
        tripped = true;
      }
    }
  }
  if (tripped) {
    if (info != nullptr) *info = local;
    return cube;
  }
  cube.sets_.emplace(full, std::move(root_fs));

  // Pre-insert every proper subset so the workers never mutate the map
  // structure; each slot is written by exactly one worker and published
  // to its children through the scheduler mutex.
  for (uint32_t m = 1; m < full; ++m) cube.sets_.emplace(m, FrequencySet());
  std::vector<FrequencySet*> slot(static_cast<size_t>(full) + 1, nullptr);
  for (auto& [mask, fs] : cube.sets_) slot[mask] = &fs;

  // Dependency counting: a mask becomes ready only when ALL of its
  // parents (supersets with one extra attribute) are materialized, so the
  // serial best-parent rule — fewest groups, lowest parent mask — picks
  // the same parent no matter which worker runs the projection, or when.
  std::vector<int32_t> deps(static_cast<size_t>(full) + 1, 0);
  for (uint32_t m = 1; m < full; ++m) {
    deps[m] = static_cast<int32_t>(n) - __builtin_popcount(m);
  }

  // Ready masks, ordered by decreasing popcount then ascending mask —
  // the serial processing order, which fills the wide (high-popcount)
  // tiers first and keeps the most independent work in flight.
  struct MaskOrder {
    bool operator()(uint32_t a, uint32_t b) const {
      int pa = __builtin_popcount(a), pb = __builtin_popcount(b);
      if (pa != pb) return pa > pb;
      return a < b;
    }
  };
  std::set<uint32_t, MaskOrder> ready;
  std::mutex mu;
  std::condition_variable cv;
  size_t remaining = full - 1;  // proper subsets still to materialize
  bool stopped = false;
  int64_t projections = 0;

  // The root is materialized: seed its children (popcount n-1 masks).
  for (size_t d = 0; d < n; ++d) {
    uint32_t child = full & ~(1u << d);
    if (child != 0 && --deps[child] == 0) ready.insert(child);
  }

  const size_t workers = static_cast<size_t>(pool.size());
  std::vector<std::unique_ptr<GovernorShard>> shards;
  if (governor != nullptr) {
    shards.reserve(workers);
    for (size_t w = 0; w < workers; ++w) {
      shards.push_back(std::make_unique<GovernorShard>(governor));
    }
  }

  if (remaining > 0) {
    // Run(workers, ...) hands every worker its own index: each runs the
    // scheduler loop below until the DAG is drained or the build stops.
    pool.Run(workers, [&](int w, size_t, size_t) {
      INCOGNITO_SPAN("cube.project.worker");
      GovernorShard* shard =
          governor != nullptr ? shards[static_cast<size_t>(w)].get() : nullptr;
      std::unique_lock<std::mutex> lock(mu);
      for (;;) {
        cv.wait(lock,
                [&] { return stopped || remaining == 0 || !ready.empty(); });
        if (stopped || remaining == 0) return;
        const uint32_t m = *ready.begin();
        ready.erase(ready.begin());
        lock.unlock();

        bool failed = false;
        if (shard != nullptr) {
          if (!shard->Check().ok()) {
            failed = true;
          } else if (INCOGNITO_FAULT_FIRED("cube.project")) {
            // Fault site "cube.project": an injected allocation failure
            // in one worker's projection; siblings stop at their next
            // checkpoint.
            governor->LatchInjectedFailure("cube.project");
            failed = true;
          }
        }
        if (!failed) {
          // All parents are materialized (the dependency invariant), so
          // this scan is the serial one: ascending candidate order,
          // first strict improvement wins.
          const FrequencySet* best = nullptr;
          for (size_t d = 0; d < n; ++d) {
            uint32_t parent = m | (1u << d);
            if (parent == m) continue;
            const FrequencySet* p = slot[parent];
            if (best == nullptr || p->NumGroups() < best->NumGroups()) {
              best = p;
            }
          }
          INCOGNITO_COUNT("cube.parallel_projections");
          *slot[m] = best->ProjectTo(ZeroNodeForMask(m), qid, substrate);
          if (shard != nullptr &&
              !shard
                   ->ChargeMemory(
                       static_cast<int64_t>(slot[m]->MemoryBytes()))
                   .ok()) {
            // Refused: the set was never admitted — drop it so the final
            // footprint only covers charged sets.
            *slot[m] = FrequencySet();
            failed = true;
          }
        }

        lock.lock();
        if (failed) {
          stopped = true;
          cv.notify_all();
          return;
        }
        ++projections;
        --remaining;
        for (size_t d = 0; d < n; ++d) {
          if ((m & (1u << d)) == 0) continue;
          uint32_t child = m & ~(1u << d);
          if (child != 0 && --deps[child] == 0) ready.insert(child);
        }
        if (remaining == 0 || !ready.empty()) cv.notify_all();
      }
    });
  }
  local.projections = projections;

  // The worker charges were transient leases: drain them, then (on
  // success) charge the whole projection footprint once on the main
  // thread. The recharge always fits — the drained leases covered at
  // least this many bytes — so the governor's live total matches the
  // serial build and ReleaseMemory balances it back to zero.
  for (auto& shard : shards) shard->Drain();
  bool build_tripped =
      stopped || (governor != nullptr && !governor->SharedTrip().ok());
  if (!build_tripped && governor != nullptr) {
    int64_t projection_bytes = 0;
    for (const auto& [mask, fs] : cube.sets_) {
      if (mask != full) {
        projection_bytes += static_cast<int64_t>(fs.MemoryBytes());
      }
    }
    build_tripped =
        projection_bytes > 0 && !governor->ChargeMemory(projection_bytes).ok();
  }
  if (build_tripped) {
    cube.sets_.clear();
    if (governor != nullptr) governor->ReleaseMemory(root_bytes);
    if (info != nullptr) {
      local.num_subsets = 0;
      *info = local;
    }
    return cube;
  }

  INCOGNITO_COUNT_ADD("cube.subsets",
                      static_cast<int64_t>(cube.sets_.size()));
  local.num_subsets = cube.sets_.size();
  for (const auto& [mask, fs] : cube.sets_) {
    (void)mask;
    local.total_groups += fs.NumGroups();
    local.total_bytes += fs.MemoryBytes();
  }
  if (info != nullptr) *info = local;
  return cube;
}

void ZeroGenCube::ReleaseMemory(ExecutionGovernor* governor) const {
  if (governor == nullptr) return;
  for (const auto& [mask, fs] : sets_) {
    (void)mask;
    governor->ReleaseMemory(static_cast<int64_t>(fs.MemoryBytes()));
  }
}

const FrequencySet& ZeroGenCube::Get(const std::vector<int32_t>& dims) const {
  auto it = sets_.find(MaskOf(dims));
  assert(it != sets_.end() && "subset not covered by this cube");
  return it->second;
}

}  // namespace incognito
