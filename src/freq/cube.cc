#include "freq/cube.h"

#include <algorithm>
#include <cassert>

#include "obs/obs.h"
#include "robust/fault_injector.h"

namespace incognito {

uint32_t ZeroGenCube::MaskOf(const std::vector<int32_t>& dims) {
  uint32_t mask = 0;
  for (int32_t d : dims) mask |= 1u << d;
  return mask;
}

namespace {

SubsetNode ZeroNodeForMask(uint32_t mask) {
  SubsetNode node;
  for (int32_t d = 0; d < 32; ++d) {
    if (mask & (1u << d)) {
      node.dims.push_back(d);
      node.levels.push_back(0);
    }
  }
  return node;
}

}  // namespace

ZeroGenCube ZeroGenCube::Build(const Table& table, const QuasiIdentifier& qid,
                               BuildInfo* info,
                               ExecutionGovernor* governor) {
  INCOGNITO_SPAN("cube.build");
  INCOGNITO_PHASE_TIMER("phase.cube_build_seconds");
  INCOGNITO_COUNT("cube.builds");
  const size_t n = qid.size();
  assert(n >= 1 && n <= 24);
  ZeroGenCube cube;
  BuildInfo local;

  // Charges a freshly materialized frequency set against the governor's
  // memory budget; false stops the build (trip is latched in the governor).
  auto charge = [&](const FrequencySet& fs) {
    if (governor == nullptr) return true;
    if (!governor->Check().ok()) return false;
    // Fault site "cube.build": an injected allocation failure while
    // materializing a cube subset (the root scan or a projection) latches
    // like a refused charge and stops the build.
    if (INCOGNITO_FAULT_FIRED("cube.build")) {
      governor->LatchInjectedFailure("cube.build");
      return false;
    }
    return governor->ChargeMemory(static_cast<int64_t>(fs.MemoryBytes()))
        .ok();
  };

  const uint32_t full = (n == 32 ? ~0u : (1u << n) - 1);
  auto root = cube.sets_.emplace(
      full, FrequencySet::Compute(table, qid, ZeroNodeForMask(full)));
  local.table_scans = 1;
  bool tripped = !charge(root.first->second);
  if (tripped) cube.sets_.clear();

  // Process masks in decreasing popcount order; each mask is aggregated
  // from the already-computed superset with the fewest groups.
  std::vector<uint32_t> masks;
  for (uint32_t m = 1; m < full; ++m) masks.push_back(m);
  std::sort(masks.begin(), masks.end(), [](uint32_t a, uint32_t b) {
    int pa = __builtin_popcount(a), pb = __builtin_popcount(b);
    if (pa != pb) return pa > pb;
    return a < b;
  });
  for (uint32_t m : masks) {
    if (tripped) break;
    // Candidate parents: m plus one attribute not in m.
    const FrequencySet* best = nullptr;
    for (size_t d = 0; d < n; ++d) {
      uint32_t parent = m | (1u << d);
      if (parent == m) continue;
      auto it = cube.sets_.find(parent);
      if (it != cube.sets_.end() &&
          (best == nullptr || it->second.NumGroups() < best->NumGroups())) {
        best = &it->second;
      }
    }
    assert(best != nullptr);
    auto inserted = cube.sets_.emplace(m, best->ProjectTo(ZeroNodeForMask(m), qid));
    ++local.projections;
    if (!charge(inserted.first->second)) {
      // The just-built set was refused: drop it (it was never charged) and
      // stop; earlier sets stay charged until ReleaseMemory.
      cube.sets_.erase(inserted.first);
      tripped = true;
    }
  }

  INCOGNITO_COUNT_ADD("cube.subsets",
                      static_cast<int64_t>(cube.sets_.size()));
  local.num_subsets = cube.sets_.size();
  for (const auto& [mask, fs] : cube.sets_) {
    (void)mask;
    local.total_groups += fs.NumGroups();
    local.total_bytes += fs.MemoryBytes();
  }
  if (info != nullptr) *info = local;
  return cube;
}

void ZeroGenCube::ReleaseMemory(ExecutionGovernor* governor) const {
  if (governor == nullptr) return;
  for (const auto& [mask, fs] : sets_) {
    (void)mask;
    governor->ReleaseMemory(static_cast<int64_t>(fs.MemoryBytes()));
  }
}

const FrequencySet& ZeroGenCube::Get(const std::vector<int32_t>& dims) const {
  auto it = sets_.find(MaskOf(dims));
  assert(it != sets_.end() && "subset not covered by this cube");
  return it->second;
}

}  // namespace incognito
