#include "freq/sensitive_frequency_set.h"

#include <algorithm>
#include <cassert>

namespace incognito {

namespace {

struct VecHash {
  size_t operator()(const std::vector<int32_t>& v) const {
    uint64_t h = 0xcbf29ce484222325ULL;
    for (int32_t x : v) {
      h ^= static_cast<uint32_t>(x);
      h *= 0x100000001b3ULL;
    }
    return static_cast<size_t>(h);
  }
};

std::vector<size_t> Cardinalities(const QuasiIdentifier& qid,
                                  const SubsetNode& node) {
  std::vector<size_t> cards;
  cards.reserve(node.size());
  for (size_t i = 0; i < node.size(); ++i) {
    cards.push_back(qid.hierarchy(static_cast<size_t>(node.dims[i]))
                        .DomainSize(static_cast<size_t>(node.levels[i])));
  }
  return cards;
}

}  // namespace

void SensitiveFrequencySet::InsertSensitive(std::vector<int32_t>* sorted,
                                            int32_t code) {
  auto it = std::lower_bound(sorted->begin(), sorted->end(), code);
  if (it == sorted->end() || *it != code) sorted->insert(it, code);
}

void SensitiveFrequencySet::MergeSensitive(std::vector<int32_t>* dst,
                                           const std::vector<int32_t>& src) {
  std::vector<int32_t> merged;
  merged.reserve(dst->size() + src.size());
  std::set_union(dst->begin(), dst->end(), src.begin(), src.end(),
                 std::back_inserter(merged));
  *dst = std::move(merged);
}

SensitiveFrequencySet SensitiveFrequencySet::Compute(
    const Table& table, const QuasiIdentifier& qid, const SubsetNode& node,
    size_t sensitive_column) {
  assert(node.size() > 0);
  SensitiveFrequencySet fs;
  fs.node_ = node;
  fs.codec_ = KeyCodec::Create(Cardinalities(qid, node));
  fs.packed_ = fs.codec_.packed();

  const size_t n = node.size();
  std::vector<const int32_t*> cols(n);
  std::vector<const int32_t*> maps(n);
  for (size_t i = 0; i < n; ++i) {
    size_t d = static_cast<size_t>(node.dims[i]);
    assert(qid.column(d) != sensitive_column &&
           "sensitive attribute must not be part of the quasi-identifier");
    cols[i] = table.ColumnCodes(qid.column(d)).data();
    maps[i] = qid.hierarchy(d)
                  .BaseToLevelMap(static_cast<size_t>(node.levels[i]))
                  .data();
  }
  const int32_t* sensitive = table.ColumnCodes(sensitive_column).data();

  const size_t rows = table.num_rows();
  std::vector<int32_t> codes(n);
  if (fs.packed_) {
    std::unordered_map<uint64_t, GroupStats> agg;
    for (size_t r = 0; r < rows; ++r) {
      for (size_t i = 0; i < n; ++i) codes[i] = maps[i][cols[i][r]];
      GroupStats& g = agg[fs.codec_.Pack(codes.data())];
      ++g.count;
      InsertSensitive(&g.sensitive, sensitive[r]);
    }
    fs.groups_.assign(std::make_move_iterator(agg.begin()),
                      std::make_move_iterator(agg.end()));
  } else {
    std::unordered_map<std::vector<int32_t>, GroupStats, VecHash> agg;
    for (size_t r = 0; r < rows; ++r) {
      for (size_t i = 0; i < n; ++i) codes[i] = maps[i][cols[i][r]];
      GroupStats& g = agg[codes];
      ++g.count;
      InsertSensitive(&g.sensitive, sensitive[r]);
    }
    fs.vgroups_.assign(std::make_move_iterator(agg.begin()),
                       std::make_move_iterator(agg.end()));
  }
  fs.total_count_ = static_cast<int64_t>(rows);
  return fs;
}

SensitiveFrequencySet SensitiveFrequencySet::RollupTo(
    const SubsetNode& target, const QuasiIdentifier& qid) const {
  assert(target.dims == node_.dims);
  const size_t n = node_.size();
  std::vector<std::vector<int32_t>> remap(n);
  for (size_t i = 0; i < n; ++i) {
    assert(target.levels[i] >= node_.levels[i]);
    const ValueHierarchy& h =
        qid.hierarchy(static_cast<size_t>(node_.dims[i]));
    size_t from = static_cast<size_t>(node_.levels[i]);
    size_t to = static_cast<size_t>(target.levels[i]);
    remap[i].resize(h.DomainSize(from));
    for (size_t c = 0; c < remap[i].size(); ++c) {
      remap[i][c] = h.GeneralizeFrom(from, static_cast<int32_t>(c), to);
    }
  }

  SensitiveFrequencySet out;
  out.node_ = target;
  out.codec_ = KeyCodec::Create(Cardinalities(qid, target));
  out.packed_ = out.codec_.packed();
  out.total_count_ = total_count_;

  std::unordered_map<uint64_t, GroupStats> agg;
  std::unordered_map<std::vector<int32_t>, GroupStats, VecHash> vagg;
  std::vector<int32_t> codes(n);
  auto fold = [&](const int32_t* src, const GroupStats& stats) {
    for (size_t i = 0; i < n; ++i) {
      codes[i] = remap[i][static_cast<size_t>(src[i])];
    }
    GroupStats& g = out.packed_ ? agg[out.codec_.Pack(codes.data())]
                                : vagg[codes];
    g.count += stats.count;
    MergeSensitive(&g.sensitive, stats.sensitive);
  };
  if (packed_) {
    std::vector<int32_t> unpacked(n);
    for (const auto& [key, stats] : groups_) {
      codec_.Unpack(key, unpacked.data());
      fold(unpacked.data(), stats);
    }
  } else {
    for (const auto& [key, stats] : vgroups_) {
      fold(key.data(), stats);
    }
  }
  if (out.packed_) {
    out.groups_.assign(std::make_move_iterator(agg.begin()),
                       std::make_move_iterator(agg.end()));
  } else {
    out.vgroups_.assign(std::make_move_iterator(vagg.begin()),
                        std::make_move_iterator(vagg.end()));
  }
  return out;
}

int64_t SensitiveFrequencySet::TuplesViolating(int64_t k, int64_t l) const {
  int64_t violating = 0;
  auto visit = [&](const GroupStats& g) {
    if (g.count < k || static_cast<int64_t>(g.sensitive.size()) < l) {
      violating += g.count;
    }
  };
  if (packed_) {
    for (const auto& [key, g] : groups_) {
      (void)key;
      visit(g);
    }
  } else {
    for (const auto& [key, g] : vgroups_) {
      (void)key;
      visit(g);
    }
  }
  return violating;
}

bool SensitiveFrequencySet::IsLDiverse(int64_t l,
                                       int64_t max_suppressed) const {
  return TuplesViolating(/*k=*/1, l) <= max_suppressed;
}

bool SensitiveFrequencySet::IsKAnonymousAndLDiverse(
    int64_t k, int64_t l, int64_t max_suppressed) const {
  return TuplesViolating(k, l) <= max_suppressed;
}

size_t SensitiveFrequencySet::MemoryBytes() const {
  size_t bytes = sizeof(*this);
  bytes += groups_.capacity() * sizeof(groups_[0]);
  for (const auto& [key, g] : groups_) {
    (void)key;
    bytes += g.sensitive.capacity() * sizeof(int32_t);
  }
  bytes += vgroups_.capacity() * sizeof(vgroups_[0]);
  for (const auto& [key, g] : vgroups_) {
    bytes += key.capacity() * sizeof(int32_t);
    bytes += g.sensitive.capacity() * sizeof(int32_t);
  }
  return bytes;
}

void SensitiveFrequencySet::ForEachGroup(
    const std::function<void(const int32_t*, int64_t, int64_t)>& fn) const {
  if (packed_) {
    std::vector<int32_t> codes(node_.size());
    for (const auto& [key, g] : groups_) {
      codec_.Unpack(key, codes.data());
      fn(codes.data(), g.count, static_cast<int64_t>(g.sensitive.size()));
    }
  } else {
    for (const auto& [key, g] : vgroups_) {
      fn(key.data(), g.count, static_cast<int64_t>(g.sensitive.size()));
    }
  }
}

}  // namespace incognito
