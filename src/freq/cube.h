#ifndef INCOGNITO_FREQ_CUBE_H_
#define INCOGNITO_FREQ_CUBE_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/quasi_identifier.h"
#include "freq/frequency_set.h"
#include "relation/table.h"
#include "robust/governor.h"

namespace incognito {

/// The pre-computed zero-generalization frequency sets used by Cube
/// Incognito (paper §3.3.2): for every non-empty subset of the
/// quasi-identifier attributes, the frequency set of T at the lowest level
/// of generalization. Built bottom-up in data-cube fashion — one scan of T
/// for the full attribute set, then each smaller subset is aggregated from
/// an already-computed superset, never from the table.
class ZeroGenCube {
 public:
  /// Statistics about a cube build (reported by the Fig. 12 bench).
  struct BuildInfo {
    size_t num_subsets = 0;    ///< frequency sets materialized (2^n - 1)
    size_t total_groups = 0;   ///< sum of group counts across subsets
    size_t total_bytes = 0;    ///< approximate memory footprint
    int64_t table_scans = 0;   ///< scans of T (always 1)
    int64_t projections = 0;   ///< cube-style aggregations performed
  };

  ZeroGenCube() = default;

  /// Builds the cube. Requires 1 <= qid.size() <= 24. When `governor` is
  /// non-null, every materialized frequency set is charged against its
  /// memory budget; a refused charge (or a tripped deadline/cancellation)
  /// stops the build early — the caller detects this via
  /// governor->Tripped() and must not use the incomplete cube.
  static ZeroGenCube Build(const Table& table, const QuasiIdentifier& qid,
                           BuildInfo* info = nullptr,
                           ExecutionGovernor* governor = nullptr);

  /// Releases every byte Build() charged against `governor` (call when the
  /// cube is discarded).
  void ReleaseMemory(ExecutionGovernor* governor) const;

  /// The zero-generalization frequency set for an attribute subset
  /// (ascending QID indices). Requires the subset to be non-empty and
  /// within the QID the cube was built for.
  const FrequencySet& Get(const std::vector<int32_t>& dims) const;

  size_t num_subsets() const { return sets_.size(); }

 private:
  static uint32_t MaskOf(const std::vector<int32_t>& dims);

  std::unordered_map<uint32_t, FrequencySet> sets_;
};

}  // namespace incognito

#endif  // INCOGNITO_FREQ_CUBE_H_
