#ifndef INCOGNITO_FREQ_CUBE_H_
#define INCOGNITO_FREQ_CUBE_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/quasi_identifier.h"
#include "freq/frequency_set.h"
#include "relation/table.h"
#include "robust/governor.h"

namespace incognito {

class WorkerPool;

/// The pre-computed zero-generalization frequency sets used by Cube
/// Incognito (paper §3.3.2): for every non-empty subset of the
/// quasi-identifier attributes, the frequency set of T at the lowest level
/// of generalization. Built bottom-up in data-cube fashion — one scan of T
/// for the full attribute set, then each smaller subset is aggregated from
/// an already-computed superset, never from the table.
class ZeroGenCube {
 public:
  /// Statistics about a cube build (reported by the Fig. 12 bench).
  struct BuildInfo {
    size_t num_subsets = 0;    ///< frequency sets materialized (2^n - 1)
    size_t total_groups = 0;   ///< sum of group counts across subsets
    size_t total_bytes = 0;    ///< approximate memory footprint
    int64_t table_scans = 0;   ///< scans of T (always 1)
    int64_t projections = 0;   ///< cube-style aggregations performed
  };

  ZeroGenCube() = default;

  /// Builds the cube. Requires 1 <= qid.size() <= 24. When `governor` is
  /// non-null, every materialized frequency set is charged against its
  /// memory budget; a refused charge (or a tripped deadline/cancellation)
  /// stops the build early — the caller detects this via
  /// governor->Tripped() and must not use the incomplete cube.
  ///
  /// `substrate` selects the group-by engine for the root scan and every
  /// projection (freq/substrate.h); all modes build the bit-identical
  /// cube, BuildInfo byte totals included.
  static ZeroGenCube Build(const Table& table, const QuasiIdentifier& qid,
                           BuildInfo* info = nullptr,
                           ExecutionGovernor* governor = nullptr,
                           SubstrateMode substrate = SubstrateMode::kAuto);

  /// Parallel twin of Build (docs/PARALLELISM.md "Intra-node
  /// parallelism"): the root scan runs as a parallel FrequencySet::
  /// ComputeParallel, and the per-mask projections — which form a DAG
  /// (every mask depends on its one-attribute supersets) — are scheduled
  /// by decreasing popcount with dependency counting, so independent
  /// projections at the same popcount run concurrently across the pool.
  /// A mask is only scheduled once ALL of its parents are materialized,
  /// which keeps the best-parent choice (fewest groups, lowest parent
  /// mask) deterministic; a complete build is bit-identical to Build,
  /// BuildInfo totals included.
  ///
  /// Governed builds charge each projection to the running worker's
  /// private GovernorShard ("cube.project" fault site per projection;
  /// "cube.build" at the main-thread root charge, as in Build). The
  /// transient shard leases drain at the end and a successful build
  /// re-charges the exact footprint on the main thread, so the governor's
  /// live total — and ReleaseMemory's balance back to zero — match the
  /// serial build. A tripped build latches the governor and returns an
  /// empty cube with every charged byte released.
  static ZeroGenCube BuildParallel(const Table& table,
                                   const QuasiIdentifier& qid,
                                   WorkerPool& pool, BuildInfo* info = nullptr,
                                   ExecutionGovernor* governor = nullptr,
                                   SubstrateMode substrate =
                                       SubstrateMode::kAuto);

  /// Releases every byte Build() charged against `governor` (call when the
  /// cube is discarded).
  void ReleaseMemory(ExecutionGovernor* governor) const;

  /// The zero-generalization frequency set for an attribute subset
  /// (ascending QID indices). Requires the subset to be non-empty and
  /// within the QID the cube was built for.
  const FrequencySet& Get(const std::vector<int32_t>& dims) const;

  size_t num_subsets() const { return sets_.size(); }

 private:
  static uint32_t MaskOf(const std::vector<int32_t>& dims);

  std::unordered_map<uint32_t, FrequencySet> sets_;
};

}  // namespace incognito

#endif  // INCOGNITO_FREQ_CUBE_H_
