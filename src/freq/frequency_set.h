#ifndef INCOGNITO_FREQ_FREQUENCY_SET_H_
#define INCOGNITO_FREQ_FREQUENCY_SET_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "core/quasi_identifier.h"
#include "freq/key_codec.h"
#include "freq/substrate.h"
#include "lattice/node.h"
#include "relation/table.h"

namespace incognito {

class ExecutionGovernor;
class WorkerPool;

/// The frequency set of a table with respect to a generalization node
/// (paper §1.1): a mapping from each value-group (the combination of
/// generalized quasi-identifier values) to the number of tuples carrying
/// those values. Equivalent to the result of
///   SELECT <generalized attrs>, COUNT(*) FROM T GROUP BY <generalized attrs>
/// over the star schema.
///
/// Storage is a flat array of (packed-key, count) entries when the combined
/// key fits in 64 bits (it does for both evaluation schemas), with a
/// vector-keyed fallback otherwise. Groups are kept in canonical order —
/// ascending lexicographic code vectors, which for the packed path is the
/// same as ascending packed keys because KeyCodec::Pack is
/// order-preserving — so serial, parallel, and cross-platform runs agree
/// byte-for-byte.
class FrequencySet {
 public:
  FrequencySet() = default;

  /// Computes the frequency set by scanning the table once — the paper's
  /// COUNT(*) GROUP BY query. `node` selects the participating attributes
  /// (dims, as QID indices) and the generalization level of each.
  ///
  /// `substrate` picks the group-by engine (DESIGN.md "Group-by
  /// substrates"); every mode produces the identical frequency set —
  /// groups, counts, canonical order, and MemoryBytes() — so the default
  /// kAuto simply chooses the fastest engine for the key shape.
  static FrequencySet Compute(const Table& table, const QuasiIdentifier& qid,
                              const SubsetNode& node,
                              SubstrateMode substrate = SubstrateMode::kAuto);

  /// Parallel twin of Compute (docs/PARALLELISM.md "Intra-node
  /// parallelism"): statically partitions the rows into one chunk per pool
  /// worker, aggregates each chunk into a thread-local map, then merges in
  /// worker-id order and canonically sorts — bit-identical to Compute at
  /// any thread count, including the group order and MemoryBytes().
  ///
  /// When `governor` is non-null the scan is governed: each worker charges
  /// its local map's running footprint to a private GovernorShard
  /// (transient — drained before returning, so the caller charges the
  /// final set exactly as on the serial path), polls for
  /// deadline/cancel/shared trips every few thousand rows, and consults
  /// the "freq.scan.chunk" fault site once per chunk. A tripped scan
  /// latches the governor and returns an empty frequency set; callers
  /// detect it via governor->Check() / a failed charge.
  /// Under SubstrateChoice::kRadixSort each worker gathers and radix-sorts
  /// its chunk instead of probing a map; the sort buffers are charged to
  /// the worker's shard up front and released when the buffers die, so the
  /// budget observes the transient sort memory exactly like map growth
  /// (the mid-sort trip point of tests/substrate_test.cc).
  static FrequencySet ComputeParallel(const Table& table,
                                      const QuasiIdentifier& qid,
                                      const SubsetNode& node, WorkerPool& pool,
                                      ExecutionGovernor* governor = nullptr,
                                      SubstrateMode substrate =
                                          SubstrateMode::kAuto);

  /// Scan-sharing batch build (docs/PARALLELISM.md "Scan-sharing batch
  /// evaluation"): computes the frequency sets of several nodes from ONE
  /// pass over the table — per row, each node's projected key is packed and
  /// its group map updated — so a whole lattice level's scan-required nodes
  /// cost one scan instead of one each. result[j] is bit-identical to
  /// Compute(table, qid, nodes[j]), including the canonical group order and
  /// the exact MemoryBytes() (the merge uses the same two-pass
  /// count-unique reserve as ComputeParallel).
  ///
  /// With a non-null `pool` of size > 1 the rows are chunked across the
  /// workers exactly like ComputeParallel (thread-local per-node maps,
  /// worker-id-order merge + canonical sort). When `governor` is non-null
  /// the scan is governed: the parallel path charges every node's running
  /// map footprint to transient per-worker shards (drained before
  /// returning) and polls for trips every few thousand rows; both paths
  /// consult the "freq.batch.scan" fault site (once per chunk when
  /// parallel, once up front when serial). A tripped batch latches the
  /// governor and returns all-empty sets; callers detect it via
  /// governor->SharedTrip().
  static std::vector<FrequencySet> ComputeBatch(
      const Table& table, const QuasiIdentifier& qid,
      const std::vector<SubsetNode>& nodes, WorkerPool* pool = nullptr,
      ExecutionGovernor* governor = nullptr,
      SubstrateMode substrate = SubstrateMode::kAuto);

  /// Produces the frequency set of a more general node over the same
  /// attribute set *from this frequency set* without touching the table —
  /// the paper's Rollup Property: each target count is the sum of the
  /// source counts γ maps onto it. Requires target.dims == node().dims and
  /// target.levels[i] >= node().levels[i].
  FrequencySet RollupTo(const SubsetNode& target,
                        const QuasiIdentifier& qid) const;

  /// Produces the frequency set of a *subset* of the attributes at the
  /// same levels, by summing away the dropped dimensions (data-cube style
  /// aggregation; the Subset Property's relational counterpart, used to
  /// build the zero-generalization cube). Requires target.dims ⊆
  /// node().dims and matching levels on the kept dims.
  FrequencySet ProjectTo(const SubsetNode& target, const QuasiIdentifier& qid,
                         SubstrateMode substrate = SubstrateMode::kAuto) const;

  /// The generalization this frequency set is with respect to.
  const SubsetNode& node() const { return node_; }

  /// Number of value groups.
  size_t NumGroups() const {
    return packed_ ? groups_.size() : vgroups_.size();
  }

  /// Total tuple count (the table size minus nothing; invariant under
  /// rollup and projection).
  int64_t TotalCount() const { return total_count_; }

  /// The smallest group count; 0 for an empty frequency set.
  int64_t MinCount() const;

  /// Number of tuples lying in groups of size < k — the number of tuples
  /// that would have to be suppressed for T to satisfy k-anonymity at this
  /// generalization.
  int64_t TuplesBelowK(int64_t k) const;

  /// K-anonymity check with the paper's optional tuple-suppression
  /// threshold: true iff at most `max_suppressed` tuples lie in groups
  /// smaller than k (with max_suppressed == 0 this is the plain
  /// K-Anonymity Property).
  bool IsKAnonymous(int64_t k, int64_t max_suppressed = 0) const {
    return TuplesBelowK(k) <= max_suppressed;
  }

  /// Visits every group as (codes, count) in canonical order (ascending
  /// lexicographic code vectors); `codes` has node().size() entries, each
  /// a code in the corresponding level's domain.
  void ForEachGroup(
      const std::function<void(const int32_t* codes, int64_t count)>& fn)
      const;

  /// Approximate heap footprint in bytes (for the cube-size diagnostics).
  size_t MemoryBytes() const;

 private:
  static FrequencySet MakeEmpty(const SubsetNode& node,
                                const QuasiIdentifier& qid);

  /// Sorts groups_/vgroups_ into canonical order (see class comment).
  void SortGroups();

  SubsetNode node_;
  KeyCodec codec_;
  bool packed_ = true;
  std::vector<std::pair<uint64_t, int64_t>> groups_;  // packed path
  std::vector<std::pair<std::vector<int32_t>, int64_t>> vgroups_;  // fallback
  int64_t total_count_ = 0;
};

}  // namespace incognito

#endif  // INCOGNITO_FREQ_FREQUENCY_SET_H_
