#ifndef INCOGNITO_FREQ_KEY_CODEC_H_
#define INCOGNITO_FREQ_KEY_CODEC_H_

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace incognito {

/// Packs a vector of per-dimension codes into a single uint64 key when the
/// combined bit width allows (it does for both the Adults and Lands End
/// schemas), so frequency sets can use flat 16-byte entries instead of
/// vector keys. Dimensions with a single value contribute zero bits.
class KeyCodec {
 public:
  KeyCodec() = default;

  /// `cardinalities[i]` is the domain size of dimension i at its level.
  static KeyCodec Create(const std::vector<size_t>& cardinalities);

  /// True iff keys fit into 64 bits and Pack/Unpack may be used.
  bool packed() const { return packed_; }

  size_t num_dims() const { return bits_.size(); }
  size_t total_bits() const { return total_bits_; }

  /// Bit width of dimension d's field (0 for single-value dimensions).
  uint8_t bits(size_t d) const { return bits_[d]; }

  /// The per-dimension domain sizes this codec was created with.
  const std::vector<size_t>& cardinalities() const { return cards_; }

  /// Packs `num_dims()` codes into a key. Requires packed(), and every
  /// code in its dimension's domain — an out-of-range code would corrupt
  /// the fields packed before it (for a single-value dimension the field
  /// is zero bits wide, so only code 0 is representable). Debug builds
  /// assert the bound; release builds trust the caller.
  uint64_t Pack(const int32_t* codes) const {
    uint64_t key = 0;
    for (size_t d = 0; d < bits_.size(); ++d) {
      assert(codes[d] >= 0 &&
             static_cast<size_t>(codes[d]) < cards_[d] &&
             "code outside the dimension's domain");
      key = (key << bits_[d]) | static_cast<uint64_t>(codes[d]);
    }
    return key;
  }

  /// Unpacks a key into `num_dims()` codes. Requires packed().
  void Unpack(uint64_t key, int32_t* out) const {
    for (size_t d = bits_.size(); d-- > 0;) {
      out[d] = static_cast<int32_t>(key & ((1ULL << bits_[d]) - 1));
      key >>= bits_[d];
    }
  }

 private:
  std::vector<uint8_t> bits_;
  std::vector<size_t> cards_;
  size_t total_bits_ = 0;
  bool packed_ = false;
};

}  // namespace incognito

#endif  // INCOGNITO_FREQ_KEY_CODEC_H_
