#ifndef INCOGNITO_FREQ_KEY_CODEC_H_
#define INCOGNITO_FREQ_KEY_CODEC_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace incognito {

/// Packs a vector of per-dimension codes into a single uint64 key when the
/// combined bit width allows (it does for both the Adults and Lands End
/// schemas), so frequency sets can use flat 16-byte entries instead of
/// vector keys. Dimensions with a single value contribute zero bits.
class KeyCodec {
 public:
  KeyCodec() = default;

  /// `cardinalities[i]` is the domain size of dimension i at its level.
  static KeyCodec Create(const std::vector<size_t>& cardinalities);

  /// True iff keys fit into 64 bits and Pack/Unpack may be used.
  bool packed() const { return packed_; }

  size_t num_dims() const { return bits_.size(); }
  size_t total_bits() const { return total_bits_; }

  /// Packs `num_dims()` codes into a key. Requires packed().
  uint64_t Pack(const int32_t* codes) const {
    uint64_t key = 0;
    for (size_t d = 0; d < bits_.size(); ++d) {
      key = (key << bits_[d]) | static_cast<uint64_t>(codes[d]);
    }
    return key;
  }

  /// Unpacks a key into `num_dims()` codes. Requires packed().
  void Unpack(uint64_t key, int32_t* out) const {
    for (size_t d = bits_.size(); d-- > 0;) {
      out[d] = static_cast<int32_t>(key & ((1ULL << bits_[d]) - 1));
      key >>= bits_[d];
    }
  }

 private:
  std::vector<uint8_t> bits_;
  size_t total_bits_ = 0;
  bool packed_ = false;
};

}  // namespace incognito

#endif  // INCOGNITO_FREQ_KEY_CODEC_H_
