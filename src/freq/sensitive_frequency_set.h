#ifndef INCOGNITO_FREQ_SENSITIVE_FREQUENCY_SET_H_
#define INCOGNITO_FREQ_SENSITIVE_FREQUENCY_SET_H_

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "core/quasi_identifier.h"
#include "freq/key_codec.h"
#include "lattice/node.h"
#include "relation/table.h"

namespace incognito {

/// A frequency set that additionally tracks, per value group, the set of
/// distinct values of one *sensitive* attribute. This is the measure
/// needed for (distinct) ℓ-diversity — the natural extension of the
/// paper's framework pursued by follow-up work: a table is ℓ-diverse
/// w.r.t. a generalization iff every group contains at least ℓ distinct
/// sensitive values.
///
/// Both monotonicity properties that make Incognito's search correct for
/// k-anonymity also hold here: generalizing merges groups, which can only
/// grow each group's distinct-sensitive-value set (Generalization
/// Property), and dropping attributes likewise merges groups (Subset
/// Property) — so the same candidate-graph search applies unchanged.
class SensitiveFrequencySet {
 public:
  SensitiveFrequencySet() = default;

  /// One GROUP BY scan collecting tuple counts and distinct sensitive
  /// codes per group. `sensitive_column` indexes the table schema and
  /// must not be one of the quasi-identifier columns.
  static SensitiveFrequencySet Compute(const Table& table,
                                       const QuasiIdentifier& qid,
                                       const SubsetNode& node,
                                       size_t sensitive_column);

  /// Rollup Property for the extended measure: counts sum, sensitive sets
  /// union. Requires target.dims == node().dims with levels >=.
  SensitiveFrequencySet RollupTo(const SubsetNode& target,
                                 const QuasiIdentifier& qid) const;

  const SubsetNode& node() const { return node_; }
  size_t NumGroups() const { return groups_.size(); }
  int64_t TotalCount() const { return total_count_; }

  /// True iff every group has at least ℓ distinct sensitive values
  /// (distinct ℓ-diversity), allowing up to `max_suppressed` tuples in
  /// violating groups.
  bool IsLDiverse(int64_t l, int64_t max_suppressed = 0) const;

  /// True iff every group has >= k tuples AND >= ℓ distinct sensitive
  /// values, with a shared suppression budget over violating tuples.
  bool IsKAnonymousAndLDiverse(int64_t k, int64_t l,
                               int64_t max_suppressed = 0) const;

  /// Number of tuples lying in groups violating k-anonymity or distinct
  /// ℓ-diversity.
  int64_t TuplesViolating(int64_t k, int64_t l) const;

  /// Visits each group: QI codes, tuple count, distinct sensitive count.
  void ForEachGroup(const std::function<void(const int32_t* codes,
                                             int64_t count,
                                             int64_t distinct_sensitive)>&
                        fn) const;

  /// Approximate heap footprint (group storage plus per-group sensitive
  /// sets), for charging against an ExecutionGovernor memory budget.
  size_t MemoryBytes() const;

 private:
  struct GroupStats {
    int64_t count = 0;
    std::vector<int32_t> sensitive;  // sorted distinct sensitive codes
  };

  static void InsertSensitive(std::vector<int32_t>* sorted, int32_t code);
  static void MergeSensitive(std::vector<int32_t>* dst,
                             const std::vector<int32_t>& src);

  SubsetNode node_;
  KeyCodec codec_;
  bool packed_ = true;
  std::vector<std::pair<uint64_t, GroupStats>> groups_;
  std::vector<std::pair<std::vector<int32_t>, GroupStats>> vgroups_;
  int64_t total_count_ = 0;
};

}  // namespace incognito

#endif  // INCOGNITO_FREQ_SENSITIVE_FREQUENCY_SET_H_
