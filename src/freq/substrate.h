#ifndef INCOGNITO_FREQ_SUBSTRATE_H_
#define INCOGNITO_FREQ_SUBSTRATE_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "freq/key_codec.h"

namespace incognito {

/// Which group-by engine backs a frequency-set build (DESIGN.md "Group-by
/// substrates"). The substrates are bit-identical — groups, counts,
/// canonical order, MemoryBytes() — so the knob is purely a performance
/// choice; tests/substrate_test.cc is the differential proof.
enum class SubstrateMode {
  kHash,   ///< per-row std::unordered_map probes (the original path)
  kRadix,  ///< columnar gather + LSD radix sort (flat arena map when wide)
  kAuto,   ///< choose by key width / row count / key space (the default)
};

const char* SubstrateModeName(SubstrateMode mode);

/// Parses "hash" / "radix" / "auto"; false on anything else.
bool ParseSubstrateMode(const std::string& text, SubstrateMode* out);

/// The concrete engine a build resolves to.
enum class SubstrateChoice {
  kHashMap,    ///< std::unordered_map per-row probes
  kRadixSort,  ///< packed keys: columnar gather, LSD radix, run-length
  kFlatMap,    ///< vector keys: open-addressing map over an int32 arena
};

const char* SubstrateChoiceName(SubstrateChoice choice);

// --- The kAuto decision table. Pinned by the SubstrateAuto unit tests and
// --- published as the substrate_crossover_* derived keys of
// --- bench_micro_substrate, so retuning a constant is machine-visible in
// --- the bench_diff gate.

/// Below this many rows the hash map wins: it stays cache-resident and the
/// radix path's gather + sort passes cost more than they save.
constexpr size_t kAutoMinRadixRows = 4096;

/// With at most this many *possible* groups (the product of the per-dim
/// cardinalities) the hash map also wins: every probe hits a hot bucket
/// while radix still pays its full per-row pass structure.
constexpr size_t kAutoMaxHashKeySpace = 256;

/// Saturating product of the per-dimension cardinalities: the number of
/// possible groups, an upper bound on what a scan can produce (the row
/// count is the other bound).
size_t EstimateKeySpace(const std::vector<size_t>& cardinalities);

/// Resolves a mode to a concrete engine. Pure — no environment lookup:
///   kHash  -> kHashMap
///   kRadix -> kRadixSort when packed, else kFlatMap
///   kAuto  -> kHashMap for tiny tables (rows < kAutoMinRadixRows) or tiny
///             key spaces (<= kAutoMaxHashKeySpace); kFlatMap for unpacked
///             (wide/vector) keys; kRadixSort otherwise.
SubstrateChoice ChooseSubstrate(SubstrateMode mode, bool packed, size_t rows,
                                size_t key_space);

/// ChooseSubstrate with the INCOGNITO_SUBSTRATE environment override
/// applied first: when `mode` is kAuto and the variable is set to "hash"
/// or "radix", that mode is resolved instead — CI uses it to drive the
/// whole suite down one substrate without touching call sites. Explicit
/// modes always win over the environment; unknown values are ignored.
SubstrateChoice ResolveSubstrate(SubstrateMode mode, bool packed, size_t rows,
                                 size_t key_space);

// --- Radix kernels (packed uint64 keys) ---

/// Columnar key gather: packs rows [begin, end) of the mapped code columns
/// into `out` exactly as per-row KeyCodec::Pack would, but column-outer —
/// each dimension's fold is a tight contiguous loop over the chunk with no
/// per-row re-dispatch, which is what lets the compiler vectorize it.
void GatherPackedKeys(const std::vector<const int32_t*>& cols,
                      const std::vector<const int32_t*>& maps,
                      const KeyCodec& codec, size_t begin, size_t end,
                      std::vector<uint64_t>* out);

/// LSD radix sort (8-bit digits) over the low `total_bits` bits of `keys`,
/// ascending. `scratch` is the ping-pong buffer, resized to keys.size().
/// All digit histograms come from one pre-pass, and digits whose histogram
/// is a single bucket are skipped, so constant high bytes cost nothing.
/// When `tick` is set it is polled before every scatter pass; returning
/// false abandons the sort (keys left in an unspecified permutation) and
/// makes RadixSortKeys return false — the governed scans' mid-sort trip.
bool RadixSortKeys(std::vector<uint64_t>& keys, std::vector<uint64_t>& scratch,
                   size_t total_bits,
                   const std::function<bool()>& tick = nullptr);

/// Weighted twin for (key, count) pairs (projection inputs). Stable, so
/// equal keys keep their input order; callers coalesce afterwards.
bool RadixSortCounted(std::vector<std::pair<uint64_t, int64_t>>& items,
                      std::vector<std::pair<uint64_t, int64_t>>& scratch,
                      size_t total_bits,
                      const std::function<bool()>& tick = nullptr);

/// Run-length extracts sorted `keys` into (key, count) groups appended to
/// `out` with an exact-capacity reserve (pass it empty to get capacity ==
/// group count, the hash substrate's assign-from-map capacity). Returns
/// the number of groups appended.
size_t ExtractGroups(const std::vector<uint64_t>& keys,
                     std::vector<std::pair<uint64_t, int64_t>>* out);

// --- Flat arena map (wide / vector keys) ---

/// Open-addressing group map for keys that do not fit a uint64:
/// fixed-width int32 code vectors stored back-to-back in one arena (one
/// allocation for all keys instead of one heap node per group), linear
/// probing over a power-of-two slot table, FNV-1a over the codes.
class FlatCodeMap {
 public:
  /// `width` is the number of codes per key; `expected` pre-sizes the slot
  /// table for about that many groups.
  explicit FlatCodeMap(size_t width, size_t expected = 0);

  /// Adds `count` to the group keyed by codes[0..width).
  void Add(const int32_t* codes, int64_t count);

  size_t size() const { return counts_.size(); }

  /// Current heap footprint (arena + counts + slot-table capacities) —
  /// what a governed scan charges for this map. Grows monotonically.
  size_t MemoryBytes() const;

  /// Appends every group as (code-vector, count) in insertion order; the
  /// key vectors are exact-sized copies out of the arena.
  void AppendTo(
      std::vector<std::pair<std::vector<int32_t>, int64_t>>* out) const;

 private:
  void Grow();

  size_t width_;
  std::vector<int32_t> arena_;   ///< group keys, width_ codes each
  std::vector<int64_t> counts_;  ///< per-group counts, insertion order
  std::vector<uint32_t> slots_;  ///< group id + 1; 0 = empty
  size_t mask_ = 0;              ///< slots_.size() - 1
};

}  // namespace incognito

#endif  // INCOGNITO_FREQ_SUBSTRATE_H_
