#include "freq/key_codec.h"

namespace incognito {

namespace {

/// Bits needed to represent codes in [0, n): ceil(log2(n)), with n <= 1
/// needing zero bits.
uint8_t BitsFor(size_t n) {
  uint8_t bits = 0;
  size_t capacity = 1;
  while (capacity < n) {
    capacity <<= 1;
    ++bits;
  }
  return bits;
}

}  // namespace

KeyCodec KeyCodec::Create(const std::vector<size_t>& cardinalities) {
  KeyCodec codec;
  codec.bits_.reserve(cardinalities.size());
  codec.cards_.reserve(cardinalities.size());
  size_t total = 0;
  for (size_t n : cardinalities) {
    uint8_t b = BitsFor(n);
    codec.bits_.push_back(b);
    // An empty domain still admits code 0 (zero-bit field), so the Pack
    // bounds assertion treats cardinality 0 as a single-value dimension.
    codec.cards_.push_back(n == 0 ? 1 : n);
    total += b;
  }
  codec.total_bits_ = total;
  codec.packed_ = total <= 64;
  return codec;
}

}  // namespace incognito
