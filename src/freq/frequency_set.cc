#include "freq/frequency_set.h"

#include <algorithm>
#include <cassert>
#include <memory>
#include <unordered_map>

#include "core/worker_pool.h"
#include "freq/substrate.h"
#include "obs/obs.h"
#include "robust/fault_injector.h"
#include "robust/governor.h"

namespace incognito {

namespace {

/// FNV-1a hash over a code vector (fallback key path).
struct VecHash {
  size_t operator()(const std::vector<int32_t>& v) const {
    uint64_t h = 0xcbf29ce484222325ULL;
    for (int32_t x : v) {
      h ^= static_cast<uint32_t>(x);
      h *= 0x100000001b3ULL;
    }
    return static_cast<size_t>(h);
  }
};

std::vector<size_t> Cardinalities(const QuasiIdentifier& qid,
                                  const SubsetNode& node) {
  std::vector<size_t> cards;
  cards.reserve(node.size());
  for (size_t i = 0; i < node.size(); ++i) {
    cards.push_back(qid.hierarchy(static_cast<size_t>(node.dims[i]))
                        .DomainSize(static_cast<size_t>(node.levels[i])));
  }
  return cards;
}

/// Approximate per-entry heap cost of the aggregation hash maps, used for
/// the parallel scan's transient shard charges (two bucket/node pointers
/// of overhead per entry on the common implementations).
constexpr size_t kHashNodeOverhead = 2 * sizeof(void*);

/// Resolves which engine a build with this codec and input size uses
/// (substrate.h; the INCOGNITO_SUBSTRATE environment override applies to
/// kAuto only).
SubstrateChoice ChoiceFor(const KeyCodec& codec, size_t rows,
                          SubstrateMode substrate) {
  return ResolveSubstrate(substrate, codec.packed(), rows,
                          EstimateKeySpace(codec.cardinalities()));
}

/// One group-by build ran on this engine (OBSERVABILITY.md).
void CountSubstrate(SubstrateChoice choice) {
  switch (choice) {
    case SubstrateChoice::kHashMap:
      INCOGNITO_COUNT("freq.substrate_hash");
      break;
    case SubstrateChoice::kRadixSort:
      INCOGNITO_COUNT("freq.substrate_radix");
      break;
    case SubstrateChoice::kFlatMap:
      INCOGNITO_COUNT("freq.substrate_flat");
      break;
  }
}

/// Coalesces a key-sorted (key, count) run into unique groups with an
/// exact-capacity reserve — `out` must be empty so its final capacity is
/// the group count, matching the hash substrate's assign-from-map.
void CoalescePacked(const std::vector<std::pair<uint64_t, int64_t>>& all,
                    std::vector<std::pair<uint64_t, int64_t>>* out) {
  size_t unique = 0;
  for (size_t i = 0; i < all.size(); ++i) {
    if (i == 0 || all[i].first != all[i - 1].first) ++unique;
  }
  out->reserve(unique);
  for (size_t i = 0; i < all.size();) {
    const uint64_t key = all[i].first;
    int64_t count = 0;
    for (; i < all.size() && all[i].first == key; ++i) count += all[i].second;
    out->emplace_back(key, count);
  }
}

/// Vector-key twin of CoalescePacked.
void CoalesceVec(
    const std::vector<std::pair<std::vector<int32_t>, int64_t>>& all,
    std::vector<std::pair<std::vector<int32_t>, int64_t>>* out) {
  size_t unique = 0;
  for (size_t i = 0; i < all.size(); ++i) {
    if (i == 0 || all[i].first != all[i - 1].first) ++unique;
  }
  out->reserve(unique);
  for (size_t i = 0; i < all.size();) {
    std::vector<int32_t> key = all[i].first;
    int64_t count = 0;
    for (; i < all.size() && all[i].first == key; ++i) count += all[i].second;
    out->emplace_back(std::move(key), count);
  }
}

}  // namespace

FrequencySet FrequencySet::MakeEmpty(const SubsetNode& node,
                                     const QuasiIdentifier& qid) {
  FrequencySet fs;
  fs.node_ = node;
  fs.codec_ = KeyCodec::Create(Cardinalities(qid, node));
  fs.packed_ = fs.codec_.packed();
  return fs;
}

FrequencySet FrequencySet::Compute(const Table& table,
                                   const QuasiIdentifier& qid,
                                   const SubsetNode& node,
                                   SubstrateMode substrate) {
  assert(node.size() > 0);
  INCOGNITO_SPAN("freq.scan");
  INCOGNITO_PHASE_TIMER("phase.freq_scan_seconds");
  INCOGNITO_HIST_TIMER("freq.build_seconds");
  INCOGNITO_COUNT("freq.scans");
  INCOGNITO_COUNT_ADD("freq.scan_rows",
                      static_cast<int64_t>(table.num_rows()));
  FrequencySet fs = MakeEmpty(node, qid);

  const size_t n = node.size();
  // Gather the encoded columns and the base→level generalization maps.
  std::vector<const int32_t*> cols(n);
  std::vector<const int32_t*> maps(n);
  for (size_t i = 0; i < n; ++i) {
    size_t d = static_cast<size_t>(node.dims[i]);
    cols[i] = table.ColumnCodes(qid.column(d)).data();
    maps[i] = qid.hierarchy(d)
                  .BaseToLevelMap(static_cast<size_t>(node.levels[i]))
                  .data();
  }

  const size_t rows = table.num_rows();
  const SubstrateChoice choice = ChoiceFor(fs.codec_, rows, substrate);
  CountSubstrate(choice);
  switch (choice) {
    case SubstrateChoice::kRadixSort: {
      // Columnar gather + LSD radix: order-preserving packing means the
      // sorted key run IS the canonical group order, so the run-length
      // extraction below replaces both the hash probes and SortGroups().
      std::vector<uint64_t> keys;
      GatherPackedKeys(cols, maps, fs.codec_, 0, rows, &keys);
      std::vector<uint64_t> scratch;
      RadixSortKeys(keys, scratch, fs.codec_.total_bits());
      ExtractGroups(keys, &fs.groups_);
      break;
    }
    case SubstrateChoice::kFlatMap: {
      FlatCodeMap agg(n, rows / 4 + 8);
      std::vector<int32_t> codes(n);
      for (size_t r = 0; r < rows; ++r) {
        for (size_t i = 0; i < n; ++i) codes[i] = maps[i][cols[i][r]];
        agg.Add(codes.data(), 1);
      }
      agg.AppendTo(&fs.vgroups_);
      fs.SortGroups();
      break;
    }
    case SubstrateChoice::kHashMap: {
      if (fs.packed_) {
        std::unordered_map<uint64_t, int64_t> agg;
        agg.reserve(rows / 4 + 8);
        std::vector<int32_t> codes(n);
        for (size_t r = 0; r < rows; ++r) {
          for (size_t i = 0; i < n; ++i) codes[i] = maps[i][cols[i][r]];
          ++agg[fs.codec_.Pack(codes.data())];
        }
        fs.groups_.assign(agg.begin(), agg.end());
      } else {
        std::unordered_map<std::vector<int32_t>, int64_t, VecHash> agg;
        agg.reserve(rows / 4 + 8);
        std::vector<int32_t> codes(n);
        for (size_t r = 0; r < rows; ++r) {
          for (size_t i = 0; i < n; ++i) codes[i] = maps[i][cols[i][r]];
          ++agg[codes];
        }
        fs.vgroups_.assign(agg.begin(), agg.end());
      }
      fs.SortGroups();
      break;
    }
  }
  fs.total_count_ = static_cast<int64_t>(rows);
  return fs;
}

FrequencySet FrequencySet::ComputeParallel(const Table& table,
                                           const QuasiIdentifier& qid,
                                           const SubsetNode& node,
                                           WorkerPool& pool,
                                           ExecutionGovernor* governor,
                                           SubstrateMode substrate) {
  assert(node.size() > 0);
  INCOGNITO_SPAN("freq.scan");
  INCOGNITO_PHASE_TIMER("phase.freq_scan_seconds");
  INCOGNITO_HIST_TIMER("freq.build_seconds");
  INCOGNITO_COUNT("freq.scans");
  INCOGNITO_COUNT("freq.parallel_scans");
  INCOGNITO_COUNT_ADD("freq.scan_rows",
                      static_cast<int64_t>(table.num_rows()));
  FrequencySet fs = MakeEmpty(node, qid);

  const size_t n = node.size();
  std::vector<const int32_t*> cols(n);
  std::vector<const int32_t*> maps(n);
  for (size_t i = 0; i < n; ++i) {
    size_t d = static_cast<size_t>(node.dims[i]);
    cols[i] = table.ColumnCodes(qid.column(d)).data();
    maps[i] = qid.hierarchy(d)
                  .BaseToLevelMap(static_cast<size_t>(node.levels[i]))
                  .data();
  }

  const size_t rows = table.num_rows();
  const size_t workers = static_cast<size_t>(pool.size());
  INCOGNITO_COUNT_ADD("freq.scan_chunks", static_cast<int64_t>(workers));
  // The whole scan resolves to one engine (the decision depends only on
  // the codec and the full row count), so every worker runs the same
  // substrate and the merge sees homogeneous partials.
  const SubstrateChoice choice = ChoiceFor(fs.codec_, rows, substrate);
  CountSubstrate(choice);

  // Per-worker thread-local aggregation state; merged after the barrier.
  std::vector<std::unordered_map<uint64_t, int64_t>> wagg;
  std::vector<std::unordered_map<std::vector<int32_t>, int64_t, VecHash>>
      wvagg;
  std::vector<std::vector<std::pair<uint64_t, int64_t>>> wpart;
  std::vector<std::unique_ptr<FlatCodeMap>> wflat;
  switch (choice) {
    case SubstrateChoice::kRadixSort:
      wpart.resize(workers);
      break;
    case SubstrateChoice::kFlatMap:
      wflat.resize(workers);
      break;
    case SubstrateChoice::kHashMap:
      if (fs.packed_) {
        wagg.resize(workers);
      } else {
        wvagg.resize(workers);
      }
      break;
  }

  // Governed scans charge the running footprint of each worker's local
  // aggregation state to a private shard so the global budget observes the
  // transient scan memory; the shards drain before returning and the
  // caller charges the final set exactly as on the serial path. The radix
  // engine's transient state is its gather + scratch buffers (charged up
  // front, released when they die) plus the extracted groups.
  std::vector<std::unique_ptr<GovernorShard>> shards;
  if (governor != nullptr) {
    shards.reserve(workers);
    for (size_t w = 0; w < workers; ++w) {
      shards.push_back(std::make_unique<GovernorShard>(governor));
    }
  }

  const size_t entry_bytes =
      (fs.packed_ ? sizeof(std::pair<const uint64_t, int64_t>)
                  : sizeof(std::pair<const std::vector<int32_t>, int64_t>) +
                        n * sizeof(int32_t)) +
      kHashNodeOverhead;
  constexpr size_t kCheckEveryRows = 16384;

  pool.Run(rows, [&](int w, size_t begin, size_t end) {
    INCOGNITO_SPAN("freq.scan.chunk");
    const size_t wi = static_cast<size_t>(w);
    GovernorShard* shard = governor != nullptr ? shards[wi].get() : nullptr;
    if (shard != nullptr) {
      if (!shard->Check().ok()) return;
      // Fault site "freq.scan.chunk": an injected allocation failure at
      // the start of a worker's row chunk latches like a refused charge;
      // sibling chunks stop at their next checkpoint.
      if (INCOGNITO_FAULT_FIRED("freq.scan.chunk")) {
        governor->LatchInjectedFailure("freq.scan.chunk");
        return;
      }
    }
    int64_t charged = 0;
    auto checkpoint = [&](size_t footprint) {
      if (shard == nullptr) return true;
      if (!shard->Check().ok()) return false;
      int64_t now = static_cast<int64_t>(footprint);
      if (now > charged) {
        if (!shard->ChargeMemory(now - charged).ok()) return false;
        charged = now;
      }
      return true;
    };
    if (choice == SubstrateChoice::kRadixSort) {
      const size_t chunk_rows = end - begin;
      if (chunk_rows == 0) return;
      // The gather + scratch buffers are the radix engine's map-growth
      // analogue: charged before they exist, released when they die.
      const int64_t buffer_bytes =
          static_cast<int64_t>(2 * chunk_rows * sizeof(uint64_t));
      if (shard != nullptr && !shard->ChargeMemory(buffer_bytes).ok()) return;
      {
        std::function<bool()> tick;
        if (shard != nullptr) {
          tick = [shard] { return shard->Check().ok(); };
        }
        std::vector<uint64_t> keys;
        GatherPackedKeys(cols, maps, fs.codec_, begin, end, &keys);
        std::vector<uint64_t> scratch;
        if (RadixSortKeys(keys, scratch, fs.codec_.total_bits(), tick)) {
          const size_t groups = ExtractGroups(keys, &wpart[wi]);
          checkpoint(groups * sizeof(std::pair<uint64_t, int64_t>));
        }
      }
      if (shard != nullptr) shard->ReleaseMemory(buffer_bytes);
      return;
    }
    std::vector<int32_t> codes(n);
    if (choice == SubstrateChoice::kFlatMap) {
      wflat[wi] =
          std::make_unique<FlatCodeMap>(n, (end - begin) / 4 + 8);
      FlatCodeMap& agg = *wflat[wi];
      for (size_t r = begin; r < end; ++r) {
        if ((r - begin) % kCheckEveryRows == 0 &&
            !checkpoint(agg.MemoryBytes())) {
          return;
        }
        for (size_t i = 0; i < n; ++i) codes[i] = maps[i][cols[i][r]];
        agg.Add(codes.data(), 1);
      }
      checkpoint(agg.MemoryBytes());
    } else if (fs.packed_) {
      auto& agg = wagg[wi];
      agg.reserve((end - begin) / 4 + 8);
      for (size_t r = begin; r < end; ++r) {
        if ((r - begin) % kCheckEveryRows == 0 &&
            !checkpoint(agg.size() * entry_bytes)) {
          return;
        }
        for (size_t i = 0; i < n; ++i) codes[i] = maps[i][cols[i][r]];
        ++agg[fs.codec_.Pack(codes.data())];
      }
      checkpoint(agg.size() * entry_bytes);
    } else {
      auto& agg = wvagg[wi];
      agg.reserve((end - begin) / 4 + 8);
      for (size_t r = begin; r < end; ++r) {
        if ((r - begin) % kCheckEveryRows == 0 &&
            !checkpoint(agg.size() * entry_bytes)) {
          return;
        }
        for (size_t i = 0; i < n; ++i) codes[i] = maps[i][cols[i][r]];
        ++agg[codes];
      }
      checkpoint(agg.size() * entry_bytes);
    }
  });

  // Transient charges return to the governor here; a trip (if any) is
  // already latched shared, so the caller's next Check()/charge sees it.
  for (auto& shard : shards) shard->Drain();
  if (governor != nullptr && !governor->SharedTrip().ok()) {
    return MakeEmpty(node, qid);
  }

  // Merge in worker-id order, coalesce equal keys, and canonically sort.
  // Keys are unique after coalescing, so the sorted result — including its
  // exact capacity, hence MemoryBytes() — matches the serial scan. Each
  // engine's partials carry the same per-(worker, key) chunk counts, so
  // all three merges produce the identical byte-for-byte frequency set.
  if (fs.packed_) {
    std::vector<std::pair<uint64_t, int64_t>> all;
    size_t total = 0;
    if (choice == SubstrateChoice::kRadixSort) {
      for (const auto& p : wpart) total += p.size();
      all.reserve(total);
      for (const auto& p : wpart) all.insert(all.end(), p.begin(), p.end());
    } else {
      for (const auto& m : wagg) total += m.size();
      all.reserve(total);
      for (const auto& m : wagg) all.insert(all.end(), m.begin(), m.end());
    }
    std::sort(all.begin(), all.end());
    CoalescePacked(all, &fs.groups_);
  } else {
    std::vector<std::pair<std::vector<int32_t>, int64_t>> all;
    size_t total = 0;
    if (choice == SubstrateChoice::kFlatMap) {
      for (const auto& f : wflat) total += f != nullptr ? f->size() : 0;
      all.reserve(total);
      for (const auto& f : wflat) {
        if (f != nullptr) f->AppendTo(&all);
      }
    } else {
      for (const auto& m : wvagg) total += m.size();
      all.reserve(total);
      for (const auto& m : wvagg) all.insert(all.end(), m.begin(), m.end());
    }
    std::sort(all.begin(), all.end());
    CoalesceVec(all, &fs.vgroups_);
  }
  fs.total_count_ = static_cast<int64_t>(rows);
  return fs;
}

std::vector<FrequencySet> FrequencySet::ComputeBatch(
    const Table& table, const QuasiIdentifier& qid,
    const std::vector<SubsetNode>& nodes, WorkerPool* pool,
    ExecutionGovernor* governor, SubstrateMode substrate) {
  std::vector<FrequencySet> out;
  out.reserve(nodes.size());
  for (const SubsetNode& node : nodes) {
    assert(node.size() > 0);
    out.push_back(MakeEmpty(node, qid));
  }
  if (nodes.empty()) return out;
  INCOGNITO_SPAN("freq.batch_scan");
  INCOGNITO_PHASE_TIMER("phase.freq_scan_seconds");
  INCOGNITO_HIST_TIMER("freq.build_seconds");
  INCOGNITO_COUNT("freq.batch_scans");
  INCOGNITO_COUNT_ADD("freq.batch_scan_nodes",
                      static_cast<int64_t>(nodes.size()));
  INCOGNITO_COUNT_ADD("freq.scan_rows",
                      static_cast<int64_t>(table.num_rows()));

  const size_t b = nodes.size();
  const size_t rows = table.num_rows();
  // Per-node encoded columns, base→level maps, and code scratch (reused as
  // the map-lookup key on the fallback path, like the single-node scans).
  std::vector<std::vector<const int32_t*>> cols(b);
  std::vector<std::vector<const int32_t*>> maps(b);
  for (size_t j = 0; j < b; ++j) {
    const size_t n = nodes[j].size();
    cols[j].resize(n);
    maps[j].resize(n);
    for (size_t i = 0; i < n; ++i) {
      size_t d = static_cast<size_t>(nodes[j].dims[i]);
      cols[j][i] = table.ColumnCodes(qid.column(d)).data();
      maps[j][i] = qid.hierarchy(d)
                       .BaseToLevelMap(static_cast<size_t>(nodes[j].levels[i]))
                       .data();
    }
  }

  // Each node resolves its own engine (same dims, different levels ⇒
  // different key spaces, so under kAuto a batch can mix engines).
  // Radix nodes are gathered column-wise outside the shared row loop;
  // hash and flat nodes ride the row loop together.
  std::vector<SubstrateChoice> choice(b);
  bool any_radix = false;
  bool any_rowloop = false;
  for (size_t j = 0; j < b; ++j) {
    choice[j] = ChoiceFor(out[j].codec_, rows, substrate);
    CountSubstrate(choice[j]);
    if (choice[j] == SubstrateChoice::kRadixSort) {
      any_radix = true;
    } else {
      any_rowloop = true;
    }
  }

  if (pool == nullptr || pool->size() <= 1) {
    // Serial shared scan: one row loop feeds every row-loop node; radix
    // nodes each take a columnar pass over their (shared, cache-resident)
    // columns. The fault site stands in for an allocation failure while
    // setting the aggregation state up.
    if (governor != nullptr && INCOGNITO_FAULT_FIRED("freq.batch.scan")) {
      governor->LatchInjectedFailure("freq.batch.scan");
      return out;
    }
    if (any_radix) {
      std::vector<uint64_t> keys;
      std::vector<uint64_t> scratch;
      for (size_t j = 0; j < b; ++j) {
        if (choice[j] != SubstrateChoice::kRadixSort) continue;
        GatherPackedKeys(cols[j], maps[j], out[j].codec_, 0, rows, &keys);
        RadixSortKeys(keys, scratch, out[j].codec_.total_bits());
        ExtractGroups(keys, &out[j].groups_);
      }
    }
    if (any_rowloop) {
      std::vector<std::unordered_map<uint64_t, int64_t>> agg(b);
      std::vector<std::unordered_map<std::vector<int32_t>, int64_t, VecHash>>
          vagg(b);
      std::vector<std::unique_ptr<FlatCodeMap>> flat(b);
      std::vector<std::vector<int32_t>> codes(b);
      for (size_t j = 0; j < b; ++j) {
        if (choice[j] == SubstrateChoice::kRadixSort) continue;
        codes[j].resize(nodes[j].size());
        if (choice[j] == SubstrateChoice::kFlatMap) {
          flat[j] =
              std::make_unique<FlatCodeMap>(nodes[j].size(), rows / 4 + 8);
        } else if (out[j].packed_) {
          agg[j].reserve(rows / 4 + 8);
        } else {
          vagg[j].reserve(rows / 4 + 8);
        }
      }
      for (size_t r = 0; r < rows; ++r) {
        for (size_t j = 0; j < b; ++j) {
          if (choice[j] == SubstrateChoice::kRadixSort) continue;
          const size_t n = nodes[j].size();
          for (size_t i = 0; i < n; ++i) {
            codes[j][i] = maps[j][i][cols[j][i][r]];
          }
          if (choice[j] == SubstrateChoice::kFlatMap) {
            flat[j]->Add(codes[j].data(), 1);
          } else if (out[j].packed_) {
            ++agg[j][out[j].codec_.Pack(codes[j].data())];
          } else {
            ++vagg[j][codes[j]];
          }
        }
      }
      for (size_t j = 0; j < b; ++j) {
        if (choice[j] == SubstrateChoice::kRadixSort) continue;
        // assign from the finished map, exactly like Compute, so the
        // vector capacity — hence MemoryBytes() — matches the single-node
        // scan (FlatCodeMap::AppendTo reserves the same exact size).
        if (choice[j] == SubstrateChoice::kFlatMap) {
          flat[j]->AppendTo(&out[j].vgroups_);
        } else if (out[j].packed_) {
          out[j].groups_.assign(agg[j].begin(), agg[j].end());
        } else {
          out[j].vgroups_.assign(vagg[j].begin(), vagg[j].end());
        }
        out[j].SortGroups();
      }
    }
    for (size_t j = 0; j < b; ++j) {
      out[j].total_count_ = static_cast<int64_t>(rows);
    }
    return out;
  }

  const size_t workers = static_cast<size_t>(pool->size());
  INCOGNITO_COUNT("freq.parallel_scans");
  INCOGNITO_COUNT_ADD("freq.scan_chunks", static_cast<int64_t>(workers));

  // Per-worker, per-node thread-local aggregation state; merged after the
  // barrier in worker-id order.
  std::vector<std::vector<std::unordered_map<uint64_t, int64_t>>> wagg(
      workers);
  std::vector<
      std::vector<std::unordered_map<std::vector<int32_t>, int64_t, VecHash>>>
      wvagg(workers);
  std::vector<std::vector<std::vector<std::pair<uint64_t, int64_t>>>> wpart(
      workers);
  std::vector<std::vector<std::unique_ptr<FlatCodeMap>>> wflat(workers);
  for (size_t w = 0; w < workers; ++w) {
    wagg[w].resize(b);
    wvagg[w].resize(b);
    wpart[w].resize(b);
    wflat[w].resize(b);
  }

  std::vector<std::unique_ptr<GovernorShard>> shards;
  if (governor != nullptr) {
    shards.reserve(workers);
    for (size_t w = 0; w < workers; ++w) {
      shards.push_back(std::make_unique<GovernorShard>(governor));
    }
  }

  std::vector<size_t> entry_bytes(b);
  for (size_t j = 0; j < b; ++j) {
    entry_bytes[j] =
        (out[j].packed_
             ? sizeof(std::pair<const uint64_t, int64_t>)
             : sizeof(std::pair<const std::vector<int32_t>, int64_t>) +
                   nodes[j].size() * sizeof(int32_t)) +
        kHashNodeOverhead;
  }
  constexpr size_t kCheckEveryRows = 16384;

  pool->Run(rows, [&](int w, size_t begin, size_t end) {
    INCOGNITO_SPAN("freq.batch_scan.chunk");
    const size_t wi = static_cast<size_t>(w);
    GovernorShard* shard = governor != nullptr ? shards[wi].get() : nullptr;
    if (shard != nullptr) {
      if (!shard->Check().ok()) return;
      // Fault site "freq.batch.scan": an injected allocation failure at
      // the start of a worker's row chunk latches like a refused charge;
      // sibling chunks stop at their next checkpoint.
      if (INCOGNITO_FAULT_FIRED("freq.batch.scan")) {
        governor->LatchInjectedFailure("freq.batch.scan");
        return;
      }
    }
    const size_t chunk_rows = end - begin;
    // Monotonic footprint ledger shared by every node this worker feeds:
    // radix outputs charge as they finish, map growth at checkpoints.
    int64_t charged = 0;
    int64_t radix_bytes = 0;
    auto charge_to = [&](int64_t now) {
      if (shard == nullptr) return true;
      if (now > charged) {
        if (!shard->ChargeMemory(now - charged).ok()) return false;
        charged = now;
      }
      return true;
    };
    if (any_radix && chunk_rows > 0) {
      const int64_t buffer_bytes =
          static_cast<int64_t>(2 * chunk_rows * sizeof(uint64_t));
      if (shard != nullptr && !shard->ChargeMemory(buffer_bytes).ok()) return;
      bool ok = true;
      {
        std::function<bool()> tick;
        if (shard != nullptr) {
          tick = [shard] { return shard->Check().ok(); };
        }
        std::vector<uint64_t> keys;
        std::vector<uint64_t> scratch;
        for (size_t j = 0; j < b && ok; ++j) {
          if (choice[j] != SubstrateChoice::kRadixSort) continue;
          GatherPackedKeys(cols[j], maps[j], out[j].codec_, begin, end,
                           &keys);
          if (!RadixSortKeys(keys, scratch, out[j].codec_.total_bits(),
                             tick)) {
            ok = false;
            break;
          }
          const size_t groups = ExtractGroups(keys, &wpart[wi][j]);
          radix_bytes += static_cast<int64_t>(
              groups * sizeof(std::pair<uint64_t, int64_t>));
          ok = charge_to(radix_bytes);
        }
      }
      if (shard != nullptr) shard->ReleaseMemory(buffer_bytes);
      if (!ok) return;
    }
    if (!any_rowloop) return;
    auto checkpoint = [&]() {
      if (shard == nullptr) return true;
      if (!shard->Check().ok()) return false;
      int64_t now = radix_bytes;
      for (size_t j = 0; j < b; ++j) {
        switch (choice[j]) {
          case SubstrateChoice::kRadixSort:
            break;
          case SubstrateChoice::kFlatMap:
            if (wflat[wi][j] != nullptr) {
              now += static_cast<int64_t>(wflat[wi][j]->MemoryBytes());
            }
            break;
          case SubstrateChoice::kHashMap: {
            const size_t groups =
                out[j].packed_ ? wagg[wi][j].size() : wvagg[wi][j].size();
            now += static_cast<int64_t>(groups * entry_bytes[j]);
            break;
          }
        }
      }
      return charge_to(now);
    };
    std::vector<std::vector<int32_t>> codes(b);
    for (size_t j = 0; j < b; ++j) {
      if (choice[j] == SubstrateChoice::kRadixSort) continue;
      codes[j].resize(nodes[j].size());
      if (choice[j] == SubstrateChoice::kFlatMap) {
        wflat[wi][j] = std::make_unique<FlatCodeMap>(nodes[j].size(),
                                                     chunk_rows / 4 + 8);
      } else if (out[j].packed_) {
        wagg[wi][j].reserve(chunk_rows / 4 + 8);
      } else {
        wvagg[wi][j].reserve(chunk_rows / 4 + 8);
      }
    }
    for (size_t r = begin; r < end; ++r) {
      if ((r - begin) % kCheckEveryRows == 0 && !checkpoint()) return;
      for (size_t j = 0; j < b; ++j) {
        if (choice[j] == SubstrateChoice::kRadixSort) continue;
        const size_t n = nodes[j].size();
        for (size_t i = 0; i < n; ++i) {
          codes[j][i] = maps[j][i][cols[j][i][r]];
        }
        if (choice[j] == SubstrateChoice::kFlatMap) {
          wflat[wi][j]->Add(codes[j].data(), 1);
        } else if (out[j].packed_) {
          ++wagg[wi][j][out[j].codec_.Pack(codes[j].data())];
        } else {
          ++wvagg[wi][j][codes[j]];
        }
      }
    }
    checkpoint();
  });

  // Transient charges return to the governor here; a trip (if any) is
  // already latched shared, so the caller's SharedTrip() check sees it.
  for (auto& shard : shards) shard->Drain();
  if (governor != nullptr && !governor->SharedTrip().ok()) {
    for (size_t j = 0; j < b; ++j) out[j] = MakeEmpty(nodes[j], qid);
    return out;
  }

  // Merge each node in worker-id order, coalesce equal keys, and
  // canonically sort — the exact ComputeParallel merge, so the capacity
  // (hence MemoryBytes()) matches the serial single-node scan.
  for (size_t j = 0; j < b; ++j) {
    if (out[j].packed_) {
      std::vector<std::pair<uint64_t, int64_t>> all;
      size_t total = 0;
      if (choice[j] == SubstrateChoice::kRadixSort) {
        for (size_t w = 0; w < workers; ++w) total += wpart[w][j].size();
        all.reserve(total);
        for (size_t w = 0; w < workers; ++w) {
          all.insert(all.end(), wpart[w][j].begin(), wpart[w][j].end());
        }
      } else {
        for (size_t w = 0; w < workers; ++w) total += wagg[w][j].size();
        all.reserve(total);
        for (size_t w = 0; w < workers; ++w) {
          all.insert(all.end(), wagg[w][j].begin(), wagg[w][j].end());
        }
      }
      std::sort(all.begin(), all.end());
      CoalescePacked(all, &out[j].groups_);
    } else {
      std::vector<std::pair<std::vector<int32_t>, int64_t>> all;
      size_t total = 0;
      if (choice[j] == SubstrateChoice::kFlatMap) {
        for (size_t w = 0; w < workers; ++w) {
          total += wflat[w][j] != nullptr ? wflat[w][j]->size() : 0;
        }
        all.reserve(total);
        for (size_t w = 0; w < workers; ++w) {
          if (wflat[w][j] != nullptr) wflat[w][j]->AppendTo(&all);
        }
      } else {
        for (size_t w = 0; w < workers; ++w) total += wvagg[w][j].size();
        all.reserve(total);
        for (size_t w = 0; w < workers; ++w) {
          all.insert(all.end(), wvagg[w][j].begin(), wvagg[w][j].end());
        }
      }
      std::sort(all.begin(), all.end());
      CoalesceVec(all, &out[j].vgroups_);
    }
    out[j].total_count_ = static_cast<int64_t>(rows);
  }
  return out;
}

FrequencySet FrequencySet::RollupTo(const SubsetNode& target,
                                    const QuasiIdentifier& qid) const {
  assert(target.dims == node_.dims);
  INCOGNITO_SPAN("freq.rollup");
  INCOGNITO_PHASE_TIMER("phase.rollup_seconds");
  INCOGNITO_HIST_TIMER("freq.build_seconds");
  INCOGNITO_COUNT("freq.rollups");
  INCOGNITO_COUNT_ADD("freq.rollup_groups",
                      static_cast<int64_t>(NumGroups()));
  const size_t n = node_.size();
  // Per-dimension remap tables from this node's level to the target level.
  std::vector<std::vector<int32_t>> remap(n);
  for (size_t i = 0; i < n; ++i) {
    assert(target.levels[i] >= node_.levels[i]);
    const ValueHierarchy& h = qid.hierarchy(static_cast<size_t>(node_.dims[i]));
    size_t from = static_cast<size_t>(node_.levels[i]);
    size_t to = static_cast<size_t>(target.levels[i]);
    remap[i].resize(h.DomainSize(from));
    for (size_t c = 0; c < remap[i].size(); ++c) {
      remap[i][c] = h.GeneralizeFrom(from, static_cast<int32_t>(c), to);
    }
  }

  FrequencySet out = MakeEmpty(target, qid);
  std::unordered_map<uint64_t, int64_t> agg;
  std::unordered_map<std::vector<int32_t>, int64_t, VecHash> vagg;
  // Rollup can only merge groups, so the source group count bounds the
  // output size.
  if (out.packed_) {
    agg.reserve(NumGroups());
  } else {
    vagg.reserve(NumGroups());
  }
  std::vector<int32_t> codes(n);
  ForEachGroup([&](const int32_t* src, int64_t count) {
    for (size_t i = 0; i < n; ++i) {
      codes[i] = remap[i][static_cast<size_t>(src[i])];
    }
    if (out.packed_) {
      agg[out.codec_.Pack(codes.data())] += count;
    } else {
      vagg[codes] += count;
    }
  });
  if (out.packed_) {
    out.groups_.assign(agg.begin(), agg.end());
  } else {
    out.vgroups_.assign(vagg.begin(), vagg.end());
  }
  out.SortGroups();
  out.total_count_ = total_count_;
  return out;
}

FrequencySet FrequencySet::ProjectTo(const SubsetNode& target,
                                     const QuasiIdentifier& qid,
                                     SubstrateMode substrate) const {
  INCOGNITO_SPAN("freq.projection");
  INCOGNITO_PHASE_TIMER("phase.projection_seconds");
  INCOGNITO_COUNT("freq.projections");
  const size_t n = node_.size();
  const size_t m = target.size();
  // Positions of the kept dims within this node's dim list.
  std::vector<size_t> pos(m);
  for (size_t j = 0; j < m; ++j) {
    auto it = std::find(node_.dims.begin(), node_.dims.end(), target.dims[j]);
    assert(it != node_.dims.end());
    pos[j] = static_cast<size_t>(it - node_.dims.begin());
    assert(target.levels[j] == node_.levels[pos[j]]);
  }
  (void)n;

  FrequencySet out = MakeEmpty(target, qid);
  // A projection's input size is this set's group count, not the table.
  const SubstrateChoice choice = ChoiceFor(out.codec_, NumGroups(), substrate);
  CountSubstrate(choice);
  std::vector<int32_t> codes(m);
  switch (choice) {
    case SubstrateChoice::kRadixSort: {
      // Weighted radix: pack each source group's kept codes once, stable-
      // sort the (key, count) pairs, coalesce. Order-preserving packing
      // again makes the sorted run the canonical order.
      std::vector<std::pair<uint64_t, int64_t>> items;
      items.reserve(NumGroups());
      ForEachGroup([&](const int32_t* src, int64_t count) {
        for (size_t j = 0; j < m; ++j) codes[j] = src[pos[j]];
        items.emplace_back(out.codec_.Pack(codes.data()), count);
      });
      std::vector<std::pair<uint64_t, int64_t>> scratch;
      RadixSortCounted(items, scratch, out.codec_.total_bits());
      CoalescePacked(items, &out.groups_);
      break;
    }
    case SubstrateChoice::kFlatMap: {
      FlatCodeMap agg(m, NumGroups());
      ForEachGroup([&](const int32_t* src, int64_t count) {
        for (size_t j = 0; j < m; ++j) codes[j] = src[pos[j]];
        agg.Add(codes.data(), count);
      });
      agg.AppendTo(&out.vgroups_);
      out.SortGroups();
      break;
    }
    case SubstrateChoice::kHashMap: {
      std::unordered_map<uint64_t, int64_t> agg;
      std::unordered_map<std::vector<int32_t>, int64_t, VecHash> vagg;
      // Projection sums groups away, so the source group count is an upper
      // bound here too.
      if (out.packed_) {
        agg.reserve(NumGroups());
      } else {
        vagg.reserve(NumGroups());
      }
      ForEachGroup([&](const int32_t* src, int64_t count) {
        for (size_t j = 0; j < m; ++j) codes[j] = src[pos[j]];
        if (out.packed_) {
          agg[out.codec_.Pack(codes.data())] += count;
        } else {
          vagg[codes] += count;
        }
      });
      if (out.packed_) {
        out.groups_.assign(agg.begin(), agg.end());
      } else {
        out.vgroups_.assign(vagg.begin(), vagg.end());
      }
      out.SortGroups();
      break;
    }
  }
  out.total_count_ = total_count_;
  return out;
}

void FrequencySet::SortGroups() {
  // Keys are unique, so sorting the pairs sorts by key; for the packed
  // path ascending keys equal ascending lexicographic code vectors
  // because KeyCodec::Pack is order-preserving.
  if (packed_) {
    std::sort(groups_.begin(), groups_.end());
  } else {
    std::sort(vgroups_.begin(), vgroups_.end());
  }
}

int64_t FrequencySet::MinCount() const {
  int64_t min_count = 0;
  bool first = true;
  auto visit = [&](int64_t count) {
    if (first || count < min_count) {
      min_count = count;
      first = false;
    }
  };
  if (packed_) {
    for (const auto& [key, count] : groups_) {
      (void)key;
      visit(count);
    }
  } else {
    for (const auto& [key, count] : vgroups_) {
      (void)key;
      visit(count);
    }
  }
  return first ? 0 : min_count;
}

int64_t FrequencySet::TuplesBelowK(int64_t k) const {
  int64_t below = 0;
  if (packed_) {
    for (const auto& [key, count] : groups_) {
      (void)key;
      if (count < k) below += count;
    }
  } else {
    for (const auto& [key, count] : vgroups_) {
      (void)key;
      if (count < k) below += count;
    }
  }
  return below;
}

void FrequencySet::ForEachGroup(
    const std::function<void(const int32_t* codes, int64_t count)>& fn) const {
  if (packed_) {
    std::vector<int32_t> codes(node_.size());
    for (const auto& [key, count] : groups_) {
      codec_.Unpack(key, codes.data());
      fn(codes.data(), count);
    }
  } else {
    for (const auto& [key, count] : vgroups_) {
      fn(key.data(), count);
    }
  }
}

size_t FrequencySet::MemoryBytes() const {
  if (packed_) {
    return groups_.capacity() * sizeof(groups_[0]);
  }
  size_t bytes = vgroups_.capacity() * sizeof(vgroups_[0]);
  for (const auto& [key, count] : vgroups_) {
    (void)count;
    bytes += key.capacity() * sizeof(int32_t);
  }
  return bytes;
}

}  // namespace incognito
