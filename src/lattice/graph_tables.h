#ifndef INCOGNITO_LATTICE_GRAPH_TABLES_H_
#define INCOGNITO_LATTICE_GRAPH_TABLES_H_

#include <cstdint>
#include <string>
#include <vector>

#include "lattice/node.h"

namespace incognito {

/// One (dimension, index) pair of a candidate node — exactly the
/// (dim_i, index_i) column pairs of the paper's relational Nodes table
/// (Fig. 6). `dim` is the quasi-identifier attribute index, `index` the
/// level in that attribute's hierarchy.
struct DimIndexPair {
  int32_t dim;
  int32_t index;

  bool operator==(const DimIndexPair& other) const {
    return dim == other.dim && index == other.index;
  }
  bool operator<(const DimIndexPair& other) const {
    if (dim != other.dim) return dim < other.dim;
    return index < other.index;
  }
};

/// A row of the Nodes relation (paper Fig. 6): a unique ID, the sorted
/// (dim, index) pair list, and the IDs of the two size-(i-1) nodes joined
/// to produce it (parent1/parent2; -1 for the single-attribute iteration).
struct NodeRow {
  int64_t id = -1;
  std::vector<DimIndexPair> pairs;
  int64_t parent1 = -1;
  int64_t parent2 = -1;

  /// Height of the generalization: sum of the level indices.
  int32_t Height() const;

  /// Converts to a SubsetNode (dims / levels split).
  SubsetNode ToSubsetNode() const;
};

/// The relational representation of one iteration's candidate
/// generalization graph: a Nodes table and an Edges table (paper Fig. 6),
/// plus adjacency indexes. Node IDs are dense 0..size-1 within a graph.
class CandidateGraph {
 public:
  CandidateGraph() = default;

  /// Appends a node; its `id` field is assigned and returned.
  int64_t AddNode(NodeRow row);

  /// Appends a directed edge start→end (end is a direct multi-attribute
  /// generalization of start).
  void AddEdge(int64_t start, int64_t end);

  /// Must be called after all edges are added and before using the
  /// adjacency accessors (builds the in/out indexes).
  void BuildAdjacency();

  size_t num_nodes() const { return nodes_.size(); }
  size_t num_edges() const { return edges_.size(); }
  const NodeRow& node(int64_t id) const {
    return nodes_[static_cast<size_t>(id)];
  }
  const std::vector<NodeRow>& nodes() const { return nodes_; }
  const std::vector<std::pair<int64_t, int64_t>>& edges() const {
    return edges_;
  }

  /// Direct generalizations of a node (edge targets).
  const std::vector<int64_t>& OutEdges(int64_t id) const {
    return out_edges_[static_cast<size_t>(id)];
  }
  /// Direct specializations of a node (edge sources).
  const std::vector<int64_t>& InEdges(int64_t id) const {
    return in_edges_[static_cast<size_t>(id)];
  }

  /// Nodes with no incoming edge ("roots" of the breadth-first search,
  /// paper §3.1.1 / §3.3.1).
  std::vector<int64_t> Roots() const;

  /// The attribute subset size i of this iteration (pair count of any
  /// node). Requires num_nodes() > 0.
  size_t subset_size() const { return nodes_.front().pairs.size(); }

  /// Returns the subgraph induced by the nodes with keep[id] == true, with
  /// IDs renumbered densely. Used to turn (C_i, E_i) plus the k-anonymity
  /// outcomes into (S_i, E_i restricted to S_i) for the next iteration.
  CandidateGraph InducedSubgraph(const std::vector<bool>& keep) const;

  /// Diagnostic dump of both relations.
  std::string ToString() const;

 private:
  std::vector<NodeRow> nodes_;
  std::vector<std::pair<int64_t, int64_t>> edges_;
  std::vector<std::vector<int64_t>> out_edges_;
  std::vector<std::vector<int64_t>> in_edges_;
  bool adjacency_built_ = false;
};

}  // namespace incognito

#endif  // INCOGNITO_LATTICE_GRAPH_TABLES_H_
