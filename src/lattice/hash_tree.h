#ifndef INCOGNITO_LATTICE_HASH_TREE_H_
#define INCOGNITO_LATTICE_HASH_TREE_H_

#include <cstddef>
#include <memory>
#include <vector>

#include "lattice/graph_tables.h"

namespace incognito {

/// An Apriori-style hash tree over (dim, index) sequences, used by the
/// prune phase of candidate generation (paper §3.1.2: "we use a hash tree
/// structure similar to that described in [2] to remove these nodes").
///
/// Interior nodes hash the next pair of the key into a fixed fan-out of
/// children; leaves hold keys directly and split into interior nodes when
/// they exceed their capacity (and the key has pairs left to hash on).
class SubsetHashTree {
 public:
  SubsetHashTree();
  ~SubsetHashTree();
  SubsetHashTree(SubsetHashTree&&) noexcept;
  SubsetHashTree& operator=(SubsetHashTree&&) noexcept;

  /// Inserts a key (a sorted (dim,index) sequence). Duplicate inserts are
  /// harmless.
  void Insert(const std::vector<DimIndexPair>& key);

  /// Returns true iff the exact key was inserted.
  bool Contains(const std::vector<DimIndexPair>& key) const;

  size_t size() const { return size_; }

  /// Approximate heap footprint (nodes, key vectors, child pointers), used
  /// to charge the tree against an ExecutionGovernor's memory budget.
  size_t MemoryBytes() const;

 private:
  struct Node;

  static size_t Bucket(const DimIndexPair& p);
  static size_t NodeBytes(const Node& node);
  void InsertInto(Node* node, const std::vector<DimIndexPair>& key,
                  size_t depth);

  std::unique_ptr<Node> root_;
  size_t size_ = 0;
};

}  // namespace incognito

#endif  // INCOGNITO_LATTICE_HASH_TREE_H_
