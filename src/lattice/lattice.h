#ifndef INCOGNITO_LATTICE_LATTICE_H_
#define INCOGNITO_LATTICE_LATTICE_H_

#include <cstdint>
#include <vector>

#include "lattice/node.h"

namespace incognito {

/// A level vector: one hierarchy level per quasi-identifier attribute.
/// Equivalent to the paper's distance vector from the zero generalization
/// (Fig. 3(b)).
using LevelVector = std::vector<int32_t>;

/// The complete multi-attribute generalization lattice over all n
/// quasi-identifier attributes (paper §2, Fig. 3). Nodes are level vectors;
/// the bottom element is all-zeros, the top is the vector of hierarchy
/// heights. Used by the baseline algorithms (binary search, bottom-up BFS),
/// which search the full lattice rather than Incognito's candidate graphs.
class GeneralizationLattice {
 public:
  /// `max_levels[i]` is the height of attribute i's hierarchy.
  explicit GeneralizationLattice(std::vector<int32_t> max_levels);

  size_t num_dims() const { return max_levels_.size(); }
  const std::vector<int32_t>& max_levels() const { return max_levels_; }

  /// Total number of nodes: prod(max_levels[i] + 1).
  uint64_t NumNodes() const;

  /// Maximum height: sum(max_levels[i]).
  int32_t MaxHeight() const;

  /// All nodes with Height() == h, in lexicographic order.
  std::vector<LevelVector> NodesAtHeight(int32_t h) const;

  /// All nodes ordered by height, then lexicographically (a valid
  /// bottom-up breadth-first visitation order).
  std::vector<LevelVector> AllNodesByHeight() const;

  /// Direct multi-attribute generalizations: one component raised by one.
  std::vector<LevelVector> DirectGeneralizations(const LevelVector& v) const;

  /// Direct specializations: one component lowered by one.
  std::vector<LevelVector> DirectSpecializations(const LevelVector& v) const;

  /// Mixed-radix index of a node in [0, NumNodes()), usable as a dense
  /// array key for marking.
  uint64_t Index(const LevelVector& v) const;

  /// Inverse of Index().
  LevelVector FromIndex(uint64_t index) const;

 private:
  void EmitNodesAtHeight(int32_t h, size_t dim, int32_t remaining,
                         LevelVector* prefix,
                         std::vector<LevelVector>* out) const;

  std::vector<int32_t> max_levels_;
};

}  // namespace incognito

#endif  // INCOGNITO_LATTICE_LATTICE_H_
