#ifndef INCOGNITO_LATTICE_CANDIDATE_GEN_H_
#define INCOGNITO_LATTICE_CANDIDATE_GEN_H_

#include <cstddef>

#include "core/quasi_identifier.h"
#include "lattice/graph_tables.h"

namespace incognito {

class ExecutionGovernor;
class GovernorShard;

/// Counters describing one GraphGeneration step (used by tests and the
/// ablation bench to quantify a-priori pruning).
struct GraphGenStats {
  size_t joined = 0;            ///< candidates produced by the join phase
  size_t pruned = 0;            ///< candidates removed by the prune phase
  size_t candidate_edges = 0;   ///< edges produced before implied removal
  size_t implied_removed = 0;   ///< implied edges removed
};

/// Builds the first-iteration candidate graph (C1, E1): the nodes are every
/// domain of every single attribute's generalization hierarchy, the edges
/// are the hierarchy chains (paper Fig. 8 initialization).
CandidateGraph MakeSingleAttributeGraph(const QuasiIdentifier& qid);

/// The GraphGeneration procedure of paper §3.1.2: given the surviving
/// i-attribute graph (S_i with edges E_i restricted to S_i), produces the
/// (i+1)-attribute candidate graph (C_{i+1}, E_{i+1}) via
///   1. the join phase (self-join of S_i on the first i-1 (dim,index) pairs
///      with an ordering predicate on the last dimension),
///   2. the prune phase (subset check against S_i via an Apriori hash
///      tree), and
///   3. edge generation (the paper's three-disjunct join over E_i followed
///      by removal of implied, one-node-separated relationships).
/// The returned graph has adjacency built. When `governor` is non-null the
/// prune phase's Apriori hash tree is charged against its memory budget
/// for the duration of the prune; a refused charge latches the trip in the
/// governor (for the caller to observe) but the graph is still generated —
/// candidate generation is never the step that loses work.
CandidateGraph GenerateNextGraph(const CandidateGraph& survivors,
                                 GraphGenStats* stats = nullptr,
                                 ExecutionGovernor* governor = nullptr);

/// The chain graph of one attribute's generalization hierarchy — the
/// single-dimension slice of MakeSingleAttributeGraph, used to seed the
/// per-subset pipeline.
CandidateGraph MakeSingleDimensionChain(const QuasiIdentifier& qid,
                                        size_t dim);

/// Per-subset GraphGeneration for the pipelined scheduler
/// (docs/PARALLELISM.md "Pipelined subset DAG"): builds the candidate
/// graph of ONE size-(i+1) attribute subset D from the published survivor
/// graphs of its immediate sub-subsets. `parents[j]` must be the survivor
/// graph of D with its j-th attribute (in ascending dimension order)
/// dropped, so parents.size() == i+1. The join operands are
/// parents[i] (D minus its largest dimension) and parents[i-1] (D minus
/// its second-largest); the remaining parents serve the prune phase's
/// membership tests, exactly the i-subsets the batch prune queries.
///
/// Since a batch GenerateNextGraph output is the disjoint union of its
/// per-subset components (candidates and edges never cross attribute
/// subsets), the union over all size-(i+1) subsets D of these graphs is
/// node- and edge-identical to GenerateNextGraph(S_i); only the node ids
/// are subset-local, and ids are never part of the search outcome.
///
/// When `shard` is non-null the prune hash tree is charged against the
/// worker's shard lease for the duration of the prune; like the batch
/// path, a refused charge latches the trip but the graph is still
/// generated.
CandidateGraph GenerateSubsetGraph(
    const std::vector<const CandidateGraph*>& parents,
    GraphGenStats* stats = nullptr, GovernorShard* shard = nullptr);

}  // namespace incognito

#endif  // INCOGNITO_LATTICE_CANDIDATE_GEN_H_
