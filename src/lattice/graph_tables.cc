#include "lattice/graph_tables.h"

#include <cassert>

#include "common/strings.h"

namespace incognito {

int32_t NodeRow::Height() const {
  int32_t h = 0;
  for (const DimIndexPair& p : pairs) h += p.index;
  return h;
}

SubsetNode NodeRow::ToSubsetNode() const {
  SubsetNode n;
  n.dims.reserve(pairs.size());
  n.levels.reserve(pairs.size());
  for (const DimIndexPair& p : pairs) {
    n.dims.push_back(p.dim);
    n.levels.push_back(p.index);
  }
  return n;
}

int64_t CandidateGraph::AddNode(NodeRow row) {
  row.id = static_cast<int64_t>(nodes_.size());
  nodes_.push_back(std::move(row));
  adjacency_built_ = false;
  return nodes_.back().id;
}

void CandidateGraph::AddEdge(int64_t start, int64_t end) {
  assert(start >= 0 && static_cast<size_t>(start) < nodes_.size());
  assert(end >= 0 && static_cast<size_t>(end) < nodes_.size());
  edges_.emplace_back(start, end);
  adjacency_built_ = false;
}

void CandidateGraph::BuildAdjacency() {
  out_edges_.assign(nodes_.size(), {});
  in_edges_.assign(nodes_.size(), {});
  for (const auto& [start, end] : edges_) {
    out_edges_[static_cast<size_t>(start)].push_back(end);
    in_edges_[static_cast<size_t>(end)].push_back(start);
  }
  adjacency_built_ = true;
}

std::vector<int64_t> CandidateGraph::Roots() const {
  assert(adjacency_built_);
  std::vector<int64_t> roots;
  for (size_t i = 0; i < nodes_.size(); ++i) {
    if (in_edges_[i].empty()) roots.push_back(static_cast<int64_t>(i));
  }
  return roots;
}

CandidateGraph CandidateGraph::InducedSubgraph(
    const std::vector<bool>& keep) const {
  assert(keep.size() == nodes_.size());
  CandidateGraph out;
  std::vector<int64_t> remap(nodes_.size(), -1);
  for (size_t i = 0; i < nodes_.size(); ++i) {
    if (!keep[i]) continue;
    NodeRow row = nodes_[i];
    // Parent references point into the *previous* iteration's graph; they
    // are not meaningful in the survivor graph and are cleared.
    row.parent1 = -1;
    row.parent2 = -1;
    remap[i] = out.AddNode(std::move(row));
  }
  for (const auto& [start, end] : edges_) {
    int64_t s = remap[static_cast<size_t>(start)];
    int64_t e = remap[static_cast<size_t>(end)];
    if (s >= 0 && e >= 0) out.AddEdge(s, e);
  }
  out.BuildAdjacency();
  return out;
}

std::string CandidateGraph::ToString() const {
  std::string out = StringPrintf("Nodes (%zu):\n", nodes_.size());
  for (const NodeRow& n : nodes_) {
    out += StringPrintf("  %lld: ", static_cast<long long>(n.id));
    out += n.ToSubsetNode().ToString();
    out += StringPrintf(" parents=(%lld, %lld)\n",
                        static_cast<long long>(n.parent1),
                        static_cast<long long>(n.parent2));
  }
  out += StringPrintf("Edges (%zu):", edges_.size());
  for (const auto& [start, end] : edges_) {
    out += StringPrintf(" %lld->%lld", static_cast<long long>(start),
                        static_cast<long long>(end));
  }
  out += '\n';
  return out;
}

}  // namespace incognito
