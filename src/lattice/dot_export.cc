#include "lattice/dot_export.h"

#include <map>

#include "common/strings.h"

namespace incognito {

namespace {

/// DOT node statement with optional highlight fill.
std::string DotNode(const std::string& id, const std::string& label,
                    bool highlighted) {
  std::string out = "  \"" + id + "\" [label=\"" + label + "\"";
  if (highlighted) out += ", style=filled, fillcolor=lightblue";
  out += "];\n";
  return out;
}

}  // namespace

std::string CandidateGraphToDot(const CandidateGraph& graph,
                                const QuasiIdentifier* qid,
                                const std::set<std::string>& highlight) {
  std::string out = "digraph candidates {\n  rankdir=BT;\n";
  for (const NodeRow& row : graph.nodes()) {
    SubsetNode node = row.ToSubsetNode();
    std::string key = node.ToString();
    out += DotNode(StringPrintf("n%lld", static_cast<long long>(row.id)),
                   node.ToString(qid), highlight.count(key) > 0);
  }
  for (const auto& [start, end] : graph.edges()) {
    out += StringPrintf("  \"n%lld\" -> \"n%lld\";\n",
                        static_cast<long long>(start),
                        static_cast<long long>(end));
  }
  out += "}\n";
  return out;
}

std::string LatticeToDot(const GeneralizationLattice& lattice,
                         const QuasiIdentifier* qid,
                         const std::set<std::string>& highlight) {
  std::string out = "digraph lattice {\n  rankdir=BT;\n";
  // Group nodes of equal height on one rank, as in the paper's figures.
  std::map<int32_t, std::vector<std::string>> by_height;
  for (const LevelVector& v : lattice.AllNodesByHeight()) {
    SubsetNode node = SubsetNode::Full(v);
    std::string id = StringPrintf("n%llu",
                                  static_cast<unsigned long long>(
                                      lattice.Index(v)));
    out += DotNode(id, node.ToString(qid),
                   highlight.count(node.ToString()) > 0);
    by_height[node.Height()].push_back(id);
    for (const LevelVector& g : lattice.DirectGeneralizations(v)) {
      out += StringPrintf(
          "  \"%s\" -> \"n%llu\";\n", id.c_str(),
          static_cast<unsigned long long>(lattice.Index(g)));
    }
  }
  for (const auto& [height, ids] : by_height) {
    (void)height;
    out += "  { rank=same;";
    for (const std::string& id : ids) out += " \"" + id + "\";";
    out += " }\n";
  }
  out += "}\n";
  return out;
}

}  // namespace incognito
