#include "lattice/hash_tree.h"

#include <algorithm>

namespace incognito {

namespace {
constexpr size_t kFanOut = 8;
constexpr size_t kLeafCapacity = 16;
}  // namespace

struct SubsetHashTree::Node {
  bool is_leaf = true;
  std::vector<std::vector<DimIndexPair>> keys;       // leaf payload
  std::vector<std::unique_ptr<Node>> children;       // interior fan-out
};

SubsetHashTree::SubsetHashTree() : root_(std::make_unique<Node>()) {}

SubsetHashTree::~SubsetHashTree() = default;

SubsetHashTree::SubsetHashTree(SubsetHashTree&&) noexcept = default;

SubsetHashTree& SubsetHashTree::operator=(SubsetHashTree&&) noexcept =
    default;

size_t SubsetHashTree::Bucket(const DimIndexPair& p) {
  uint64_t h = (static_cast<uint64_t>(static_cast<uint32_t>(p.dim)) << 32) |
               static_cast<uint32_t>(p.index);
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdULL;
  h ^= h >> 33;
  return static_cast<size_t>(h % kFanOut);
}

void SubsetHashTree::InsertInto(Node* node,
                                const std::vector<DimIndexPair>& key,
                                size_t depth) {
  while (!node->is_leaf) {
    node = node->children[Bucket(key[depth])].get();
    ++depth;
  }
  if (std::find(node->keys.begin(), node->keys.end(), key) !=
      node->keys.end()) {
    return;
  }
  node->keys.push_back(key);
  ++size_;
  // Split an overfull leaf, provided the keys have pairs left to hash on.
  if (node->keys.size() > kLeafCapacity && depth < key.size()) {
    node->is_leaf = false;
    node->children.resize(kFanOut);
    for (auto& child : node->children) child = std::make_unique<Node>();
    std::vector<std::vector<DimIndexPair>> keys = std::move(node->keys);
    node->keys.clear();
    for (auto& k : keys) {
      Node* child = node->children[Bucket(k[depth])].get();
      child->keys.push_back(std::move(k));
    }
  }
}

void SubsetHashTree::Insert(const std::vector<DimIndexPair>& key) {
  if (key.empty()) return;
  InsertInto(root_.get(), key, 0);
}

size_t SubsetHashTree::NodeBytes(const Node& node) {
  size_t bytes = sizeof(Node);
  bytes += node.keys.capacity() * sizeof(std::vector<DimIndexPair>);
  for (const auto& key : node.keys) {
    bytes += key.capacity() * sizeof(DimIndexPair);
  }
  bytes += node.children.capacity() * sizeof(std::unique_ptr<Node>);
  for (const auto& child : node.children) {
    if (child != nullptr) bytes += NodeBytes(*child);
  }
  return bytes;
}

size_t SubsetHashTree::MemoryBytes() const {
  return sizeof(*this) + NodeBytes(*root_);
}

bool SubsetHashTree::Contains(const std::vector<DimIndexPair>& key) const {
  if (key.empty()) return false;
  const Node* node = root_.get();
  size_t depth = 0;
  while (!node->is_leaf) {
    // Interior nodes only exist where depth < key length for the keys they
    // hold; a shorter probe key than the tree depth cannot match anything.
    if (depth >= key.size()) return false;
    node = node->children[Bucket(key[depth])].get();
    ++depth;
  }
  return std::find(node->keys.begin(), node->keys.end(), key) !=
         node->keys.end();
}

}  // namespace incognito
