#include "lattice/candidate_gen.h"

#include <algorithm>
#include <cassert>
#include <map>
#include <set>
#include <unordered_map>
#include <vector>

#include "lattice/hash_tree.h"
#include "obs/obs.h"
#include "robust/governor.h"

namespace incognito {

CandidateGraph MakeSingleAttributeGraph(const QuasiIdentifier& qid) {
  INCOGNITO_SPAN("lattice.single_attribute_graph");
  CandidateGraph graph;
  std::vector<std::vector<int64_t>> level_ids(qid.size());
  for (size_t d = 0; d < qid.size(); ++d) {
    size_t height = qid.hierarchy(d).height();
    level_ids[d].resize(height + 1);
    for (size_t l = 0; l <= height; ++l) {
      NodeRow row;
      row.pairs = {{static_cast<int32_t>(d), static_cast<int32_t>(l)}};
      level_ids[d][l] = graph.AddNode(std::move(row));
    }
  }
  for (size_t d = 0; d < qid.size(); ++d) {
    for (size_t l = 0; l + 1 < level_ids[d].size(); ++l) {
      graph.AddEdge(level_ids[d][l], level_ids[d][l + 1]);
    }
  }
  graph.BuildAdjacency();
  return graph;
}

namespace {

/// Key for grouping nodes by all pairs except the last (the join phase's
/// equality predicate on dim_1..dim_{i-2}, index_1..index_{i-2}).
std::vector<DimIndexPair> PrefixKey(const NodeRow& row) {
  return {row.pairs.begin(), row.pairs.end() - 1};
}

struct ParentPairHash {
  size_t operator()(const std::pair<int64_t, int64_t>& p) const {
    return std::hash<int64_t>()(p.first) * 1000003u ^
           std::hash<int64_t>()(p.second);
  }
};

}  // namespace

CandidateGraph GenerateNextGraph(const CandidateGraph& survivors,
                                 GraphGenStats* stats,
                                 ExecutionGovernor* governor) {
  INCOGNITO_SPAN("lattice.candidate_gen");
  INCOGNITO_PHASE_TIMER("phase.candidate_gen_seconds");
  INCOGNITO_COUNT("lattice.candidate_gen_calls");
  GraphGenStats local_stats;
  CandidateGraph next;
  if (survivors.num_nodes() == 0) {
    next.BuildAdjacency();
    if (stats != nullptr) *stats = local_stats;
    return next;
  }
  const size_t i = survivors.subset_size();
  (void)i;

  // ---- Join phase -------------------------------------------------------
  // Group surviving nodes by their first i-1 pairs; within a group, every
  // ordered pair (p, q) with p's last dimension < q's last dimension joins
  // into a candidate of size i+1 (paper's INSERT INTO C_i ... SELECT).
  std::map<std::vector<DimIndexPair>, std::vector<int64_t>> groups;
  for (const NodeRow& row : survivors.nodes()) {
    groups[PrefixKey(row)].push_back(row.id);
  }
  for (auto& [prefix, ids] : groups) {
    (void)prefix;
    for (int64_t p_id : ids) {
      for (int64_t q_id : ids) {
        const NodeRow& p = survivors.node(p_id);
        const NodeRow& q = survivors.node(q_id);
        if (p.pairs.back().dim >= q.pairs.back().dim) continue;
        NodeRow cand;
        cand.pairs = p.pairs;
        cand.pairs.push_back(q.pairs.back());
        cand.parent1 = p_id;
        cand.parent2 = q_id;
        next.AddNode(std::move(cand));
        ++local_stats.joined;
      }
    }
  }

  // ---- Prune phase ------------------------------------------------------
  // A candidate survives only if every i-subset of its pairs is in S_i.
  // Dropping the last pair yields p and dropping the (i)th yields q — both
  // in S_i by construction — so only the remaining i-1 subsets need the
  // hash-tree membership test.
  SubsetHashTree tree;
  for (const NodeRow& row : survivors.nodes()) tree.Insert(row.pairs);
  int64_t tree_bytes = 0;
  if (governor != nullptr) {
    tree_bytes = static_cast<int64_t>(tree.MemoryBytes());
    if (!governor->ChargeMemory(tree_bytes).ok()) tree_bytes = 0;
  }
  std::vector<bool> keep(next.num_nodes(), true);
  for (const NodeRow& cand : next.nodes()) {
    for (size_t drop = 0; drop + 2 < cand.pairs.size(); ++drop) {
      std::vector<DimIndexPair> subset;
      subset.reserve(cand.pairs.size() - 1);
      for (size_t j = 0; j < cand.pairs.size(); ++j) {
        if (j != drop) subset.push_back(cand.pairs[j]);
      }
      if (!tree.Contains(subset)) {
        keep[static_cast<size_t>(cand.id)] = false;
        ++local_stats.pruned;
        break;
      }
    }
  }
  if (governor != nullptr && tree_bytes > 0) {
    governor->ReleaseMemory(tree_bytes);
  }
  // Rebuild the candidate table with only unpruned nodes (IDs renumbered).
  CandidateGraph pruned_graph;
  std::vector<int64_t> remap(next.num_nodes(), -1);
  for (const NodeRow& cand : next.nodes()) {
    if (keep[static_cast<size_t>(cand.id)]) {
      NodeRow row = cand;
      remap[static_cast<size_t>(cand.id)] = pruned_graph.AddNode(std::move(row));
    }
  }

  // ---- Edge generation --------------------------------------------------
  // CandidateEdges via the paper's three-disjunct join over E_i, using the
  // tracked parent IDs, then subtraction of implied (2-path) edges.
  std::unordered_map<std::pair<int64_t, int64_t>, int64_t, ParentPairHash>
      by_parents;
  for (const NodeRow& cand : pruned_graph.nodes()) {
    by_parents[{cand.parent1, cand.parent2}] = cand.id;
  }

  std::set<std::pair<int64_t, int64_t>> candidate_edges;
  auto try_edge = [&](int64_t p_id, int64_t q_parent1, int64_t q_parent2) {
    auto it = by_parents.find({q_parent1, q_parent2});
    if (it != by_parents.end() && it->second != p_id) {
      candidate_edges.insert({p_id, it->second});
    }
  };
  for (const NodeRow& cand : pruned_graph.nodes()) {
    // Disjunct 1: e: parent1 → q.parent1 and f: parent2 → q.parent2.
    for (int64_t e_end : survivors.OutEdges(cand.parent1)) {
      for (int64_t f_end : survivors.OutEdges(cand.parent2)) {
        try_edge(cand.id, e_end, f_end);
      }
    }
    // Disjunct 2: e: parent1 → q.parent1, parent2 equal.
    for (int64_t e_end : survivors.OutEdges(cand.parent1)) {
      try_edge(cand.id, e_end, cand.parent2);
    }
    // Disjunct 3: f: parent2 → q.parent2, parent1 equal.
    for (int64_t f_end : survivors.OutEdges(cand.parent2)) {
      try_edge(cand.id, cand.parent1, f_end);
    }
  }
  local_stats.candidate_edges = candidate_edges.size();

  // EXCEPT: remove relationships implied by a 2-path of candidate edges
  // ("they may only be separated by a single node", §3.1.2).
  std::unordered_map<int64_t, std::vector<int64_t>> out_adj;
  for (const auto& [start, end] : candidate_edges) {
    out_adj[start].push_back(end);
  }
  for (const auto& [start, end] : candidate_edges) {
    bool implied = false;
    auto it = out_adj.find(start);
    if (it != out_adj.end()) {
      for (int64_t mid : it->second) {
        if (mid != end && candidate_edges.count({mid, end}) > 0) {
          implied = true;
          break;
        }
      }
    }
    if (!implied) {
      pruned_graph.AddEdge(start, end);
    } else {
      ++local_stats.implied_removed;
    }
  }

  pruned_graph.BuildAdjacency();
  INCOGNITO_COUNT_ADD("lattice.joined",
                      static_cast<int64_t>(local_stats.joined));
  INCOGNITO_COUNT_ADD("lattice.pruned",
                      static_cast<int64_t>(local_stats.pruned));
  INCOGNITO_COUNT_ADD("lattice.candidate_edges",
                      static_cast<int64_t>(local_stats.candidate_edges));
  if (stats != nullptr) *stats = local_stats;
  (void)remap;
  return pruned_graph;
}

CandidateGraph MakeSingleDimensionChain(const QuasiIdentifier& qid,
                                        size_t dim) {
  CandidateGraph graph;
  size_t height = qid.hierarchy(dim).height();
  for (size_t l = 0; l <= height; ++l) {
    NodeRow row;
    row.pairs = {{static_cast<int32_t>(dim), static_cast<int32_t>(l)}};
    graph.AddNode(std::move(row));
  }
  for (size_t l = 0; l < height; ++l) {
    graph.AddEdge(static_cast<int64_t>(l), static_cast<int64_t>(l + 1));
  }
  graph.BuildAdjacency();
  return graph;
}

CandidateGraph GenerateSubsetGraph(
    const std::vector<const CandidateGraph*>& parents, GraphGenStats* stats,
    GovernorShard* shard) {
  INCOGNITO_SPAN("lattice.subset_candidate_gen");
  INCOGNITO_COUNT("lattice.subset_candidate_gen_calls");
  GraphGenStats local_stats;
  CandidateGraph next;
  assert(parents.size() >= 2);
  // The two designated join parents: dropping D's largest dimension gives
  // the p side (its nodes end in D's second-largest dimension), dropping
  // the second-largest gives the q side (its nodes end in the largest).
  const CandidateGraph& p_graph = *parents[parents.size() - 1];
  const CandidateGraph& q_graph = *parents[parents.size() - 2];
  if (p_graph.num_nodes() == 0 || q_graph.num_nodes() == 0) {
    next.BuildAdjacency();
    if (stats != nullptr) *stats = local_stats;
    return next;
  }

  // ---- Join phase -------------------------------------------------------
  // Batch GenerateNextGraph joins p, q from the same prefix group with
  // p.last.dim < q.last.dim. Restricted to subset D that is exactly: p
  // from D minus its largest dimension, q from D minus its second-largest,
  // equal on the shared prefix — the ordering predicate holds for every
  // such pair by construction.
  std::map<std::vector<DimIndexPair>, std::vector<int64_t>> q_by_prefix;
  for (const NodeRow& row : q_graph.nodes()) {
    q_by_prefix[PrefixKey(row)].push_back(row.id);
  }
  for (const NodeRow& p : p_graph.nodes()) {
    auto it = q_by_prefix.find(PrefixKey(p));
    if (it == q_by_prefix.end()) continue;
    for (int64_t q_id : it->second) {
      const NodeRow& q = q_graph.node(q_id);
      assert(p.pairs.back().dim < q.pairs.back().dim);
      NodeRow cand;
      cand.pairs = p.pairs;
      cand.pairs.push_back(q.pairs.back());
      cand.parent1 = p.id;
      cand.parent2 = q_id;
      next.AddNode(std::move(cand));
      ++local_stats.joined;
    }
  }

  // ---- Prune phase ------------------------------------------------------
  // The batch prune drops each non-designated position of a candidate and
  // tests membership in S_i; a candidate of subset D with position `drop`
  // dropped lies in subset D minus its drop-th dimension — i.e. among
  // parents[drop]'s nodes. The tree over parents[0..size-3] therefore
  // answers exactly the queries the batch tree (over all of S_i) would.
  SubsetHashTree tree;
  for (size_t j = 0; j + 2 < parents.size(); ++j) {
    for (const NodeRow& row : parents[j]->nodes()) tree.Insert(row.pairs);
  }
  int64_t tree_bytes = 0;
  if (shard != nullptr) {
    tree_bytes = static_cast<int64_t>(tree.MemoryBytes());
    if (!shard->ChargeMemory(tree_bytes).ok()) tree_bytes = 0;
  }
  std::vector<bool> keep(next.num_nodes(), true);
  for (const NodeRow& cand : next.nodes()) {
    for (size_t drop = 0; drop + 2 < cand.pairs.size(); ++drop) {
      std::vector<DimIndexPair> subset;
      subset.reserve(cand.pairs.size() - 1);
      for (size_t j = 0; j < cand.pairs.size(); ++j) {
        if (j != drop) subset.push_back(cand.pairs[j]);
      }
      if (!tree.Contains(subset)) {
        keep[static_cast<size_t>(cand.id)] = false;
        ++local_stats.pruned;
        break;
      }
    }
  }
  if (shard != nullptr && tree_bytes > 0) {
    shard->ReleaseMemory(tree_bytes);
  }
  CandidateGraph pruned_graph;
  for (const NodeRow& cand : next.nodes()) {
    if (keep[static_cast<size_t>(cand.id)]) {
      NodeRow row = cand;
      pruned_graph.AddNode(std::move(row));
    }
  }

  // ---- Edge generation --------------------------------------------------
  // Identical to the batch three-disjunct join, with the parent ids local
  // to p_graph / q_graph. Edges never cross subsets, so the batch edge set
  // restricted to D is reproduced exactly.
  std::unordered_map<std::pair<int64_t, int64_t>, int64_t, ParentPairHash>
      by_parents;
  for (const NodeRow& cand : pruned_graph.nodes()) {
    by_parents[{cand.parent1, cand.parent2}] = cand.id;
  }
  std::set<std::pair<int64_t, int64_t>> candidate_edges;
  auto try_edge = [&](int64_t p_id, int64_t q_parent1, int64_t q_parent2) {
    auto it = by_parents.find({q_parent1, q_parent2});
    if (it != by_parents.end() && it->second != p_id) {
      candidate_edges.insert({p_id, it->second});
    }
  };
  for (const NodeRow& cand : pruned_graph.nodes()) {
    for (int64_t e_end : p_graph.OutEdges(cand.parent1)) {
      for (int64_t f_end : q_graph.OutEdges(cand.parent2)) {
        try_edge(cand.id, e_end, f_end);
      }
    }
    for (int64_t e_end : p_graph.OutEdges(cand.parent1)) {
      try_edge(cand.id, e_end, cand.parent2);
    }
    for (int64_t f_end : q_graph.OutEdges(cand.parent2)) {
      try_edge(cand.id, cand.parent1, f_end);
    }
  }
  local_stats.candidate_edges = candidate_edges.size();

  std::unordered_map<int64_t, std::vector<int64_t>> out_adj;
  for (const auto& [start, end] : candidate_edges) {
    out_adj[start].push_back(end);
  }
  for (const auto& [start, end] : candidate_edges) {
    bool implied = false;
    auto it = out_adj.find(start);
    if (it != out_adj.end()) {
      for (int64_t mid : it->second) {
        if (mid != end && candidate_edges.count({mid, end}) > 0) {
          implied = true;
          break;
        }
      }
    }
    if (!implied) {
      pruned_graph.AddEdge(start, end);
    } else {
      ++local_stats.implied_removed;
    }
  }

  pruned_graph.BuildAdjacency();
  INCOGNITO_COUNT_ADD("lattice.joined",
                      static_cast<int64_t>(local_stats.joined));
  INCOGNITO_COUNT_ADD("lattice.pruned",
                      static_cast<int64_t>(local_stats.pruned));
  INCOGNITO_COUNT_ADD("lattice.candidate_edges",
                      static_cast<int64_t>(local_stats.candidate_edges));
  if (stats != nullptr) *stats = local_stats;
  return pruned_graph;
}

}  // namespace incognito
