#include "lattice/node.h"

#include <cassert>
#include <numeric>

#include "common/strings.h"
#include "core/quasi_identifier.h"

namespace incognito {

SubsetNode SubsetNode::Full(std::vector<int32_t> levels) {
  SubsetNode n;
  n.dims.resize(levels.size());
  std::iota(n.dims.begin(), n.dims.end(), 0);
  n.levels = std::move(levels);
  return n;
}

int32_t SubsetNode::Height() const {
  return std::accumulate(levels.begin(), levels.end(), 0);
}

bool SubsetNode::IsGeneralizedBy(const SubsetNode& other) const {
  if (dims != other.dims) return false;
  for (size_t i = 0; i < levels.size(); ++i) {
    if (other.levels[i] < levels[i]) return false;
  }
  return true;
}

std::string SubsetNode::ToString(const QuasiIdentifier* qid) const {
  assert(dims.size() == levels.size());
  std::string out = "<";
  for (size_t i = 0; i < dims.size(); ++i) {
    if (i > 0) out += ", ";
    if (qid != nullptr) {
      out += qid->name(static_cast<size_t>(dims[i]));
    } else {
      out += StringPrintf("d%d", dims[i]);
    }
    out += StringPrintf(":%d", levels[i]);
  }
  out += ">";
  return out;
}

size_t SubsetNodeHash::operator()(const SubsetNode& n) const {
  uint64_t h = 0xcbf29ce484222325ULL;
  auto mix = [&h](int32_t v) {
    h ^= static_cast<uint64_t>(static_cast<uint32_t>(v));
    h *= 0x100000001b3ULL;
  };
  for (int32_t d : n.dims) mix(d);
  mix(-1);
  for (int32_t l : n.levels) mix(l);
  return static_cast<size_t>(h);
}

}  // namespace incognito
