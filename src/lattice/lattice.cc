#include "lattice/lattice.h"

#include <cassert>
#include <numeric>

namespace incognito {

GeneralizationLattice::GeneralizationLattice(std::vector<int32_t> max_levels)
    : max_levels_(std::move(max_levels)) {
  assert(!max_levels_.empty());
  for (int32_t m : max_levels_) {
    assert(m >= 0);
    (void)m;
  }
}

uint64_t GeneralizationLattice::NumNodes() const {
  uint64_t n = 1;
  for (int32_t m : max_levels_) n *= static_cast<uint64_t>(m + 1);
  return n;
}

int32_t GeneralizationLattice::MaxHeight() const {
  return std::accumulate(max_levels_.begin(), max_levels_.end(), 0);
}

void GeneralizationLattice::EmitNodesAtHeight(
    int32_t h, size_t dim, int32_t remaining, LevelVector* prefix,
    std::vector<LevelVector>* out) const {
  if (dim == max_levels_.size()) {
    if (remaining == 0) out->push_back(*prefix);
    return;
  }
  // Prune: the remaining dims can absorb at most this much height.
  int32_t capacity = 0;
  for (size_t d = dim; d < max_levels_.size(); ++d) capacity += max_levels_[d];
  if (remaining > capacity) return;
  (void)h;
  for (int32_t l = 0; l <= std::min(max_levels_[dim], remaining); ++l) {
    (*prefix)[dim] = l;
    EmitNodesAtHeight(h, dim + 1, remaining - l, prefix, out);
  }
}

std::vector<LevelVector> GeneralizationLattice::NodesAtHeight(
    int32_t h) const {
  std::vector<LevelVector> out;
  if (h < 0 || h > MaxHeight()) return out;
  LevelVector prefix(max_levels_.size(), 0);
  EmitNodesAtHeight(h, 0, h, &prefix, &out);
  return out;
}

std::vector<LevelVector> GeneralizationLattice::AllNodesByHeight() const {
  std::vector<LevelVector> out;
  out.reserve(NumNodes());
  for (int32_t h = 0; h <= MaxHeight(); ++h) {
    std::vector<LevelVector> at_h = NodesAtHeight(h);
    out.insert(out.end(), at_h.begin(), at_h.end());
  }
  return out;
}

std::vector<LevelVector> GeneralizationLattice::DirectGeneralizations(
    const LevelVector& v) const {
  std::vector<LevelVector> out;
  for (size_t d = 0; d < v.size(); ++d) {
    if (v[d] < max_levels_[d]) {
      LevelVector g = v;
      ++g[d];
      out.push_back(std::move(g));
    }
  }
  return out;
}

std::vector<LevelVector> GeneralizationLattice::DirectSpecializations(
    const LevelVector& v) const {
  std::vector<LevelVector> out;
  for (size_t d = 0; d < v.size(); ++d) {
    if (v[d] > 0) {
      LevelVector s = v;
      --s[d];
      out.push_back(std::move(s));
    }
  }
  return out;
}

uint64_t GeneralizationLattice::Index(const LevelVector& v) const {
  assert(v.size() == max_levels_.size());
  uint64_t idx = 0;
  for (size_t d = 0; d < v.size(); ++d) {
    assert(v[d] >= 0 && v[d] <= max_levels_[d]);
    idx = idx * static_cast<uint64_t>(max_levels_[d] + 1) +
          static_cast<uint64_t>(v[d]);
  }
  return idx;
}

LevelVector GeneralizationLattice::FromIndex(uint64_t index) const {
  LevelVector v(max_levels_.size());
  for (size_t d = max_levels_.size(); d-- > 0;) {
    uint64_t radix = static_cast<uint64_t>(max_levels_[d] + 1);
    v[d] = static_cast<int32_t>(index % radix);
    index /= radix;
  }
  return v;
}

}  // namespace incognito
