#ifndef INCOGNITO_LATTICE_NODE_H_
#define INCOGNITO_LATTICE_NODE_H_

#include <cstdint>
#include <string>
#include <vector>

namespace incognito {

class QuasiIdentifier;

/// A multi-attribute domain generalization over a *subset* of the
/// quasi-identifier attributes: for each participating attribute (dims,
/// ascending QID indices) the chosen level in its hierarchy (levels).
///
/// When dims == {0, 1, ..., n-1} this is a node of the full generalization
/// lattice and `levels` is exactly the paper's distance vector (Fig. 3(b)).
struct SubsetNode {
  std::vector<int32_t> dims;
  std::vector<int32_t> levels;

  SubsetNode() = default;
  SubsetNode(std::vector<int32_t> d, std::vector<int32_t> l)
      : dims(std::move(d)), levels(std::move(l)) {}

  /// Convenience: a full-QID node over dims 0..levels.size()-1.
  static SubsetNode Full(std::vector<int32_t> levels);

  size_t size() const { return dims.size(); }

  /// The height of the generalization: the sum of the distance vector
  /// (paper §2: "the sum of the values in the corresponding distance
  /// vector").
  int32_t Height() const;

  /// Returns true iff `other` has the same dims and other.levels[i] >=
  /// levels[i] for all i (other is this node or a generalization of it).
  bool IsGeneralizedBy(const SubsetNode& other) const;

  bool operator==(const SubsetNode& other) const {
    return dims == other.dims && levels == other.levels;
  }
  bool operator<(const SubsetNode& other) const {
    if (dims != other.dims) return dims < other.dims;
    return levels < other.levels;
  }

  /// "<Age:1, Zipcode:2>" (with a QID for names) or "<d0:1, d3:2>".
  std::string ToString(const QuasiIdentifier* qid = nullptr) const;
};

/// Hash functor for SubsetNode.
struct SubsetNodeHash {
  size_t operator()(const SubsetNode& n) const;
};

}  // namespace incognito

#endif  // INCOGNITO_LATTICE_NODE_H_
