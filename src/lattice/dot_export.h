#ifndef INCOGNITO_LATTICE_DOT_EXPORT_H_
#define INCOGNITO_LATTICE_DOT_EXPORT_H_

#include <set>
#include <string>

#include "core/quasi_identifier.h"
#include "lattice/graph_tables.h"
#include "lattice/lattice.h"

namespace incognito {

/// Renders a candidate generalization graph as Graphviz DOT (one node per
/// candidate, one edge per direct generalization), for debugging and for
/// reproducing figures in the style of the paper's Fig. 5/7. Nodes whose
/// SubsetNode string appears in `highlight` are drawn filled — e.g. the
/// k-anonymous survivors.
std::string CandidateGraphToDot(const CandidateGraph& graph,
                                const QuasiIdentifier* qid = nullptr,
                                const std::set<std::string>& highlight = {});

/// Renders the full multi-attribute generalization lattice (paper Fig. 3)
/// as DOT, with nodes ranked by height.
std::string LatticeToDot(const GeneralizationLattice& lattice,
                         const QuasiIdentifier* qid = nullptr,
                         const std::set<std::string>& highlight = {});

}  // namespace incognito

#endif  // INCOGNITO_LATTICE_DOT_EXPORT_H_
