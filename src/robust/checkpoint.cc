#include "robust/checkpoint.h"

#include <algorithm>
#include <chrono>
#include <set>

#include "common/strings.h"
#include "core/incognito.h"
#include "core/quasi_identifier.h"
#include "relation/table.h"
#include "robust/safe_io.h"

namespace incognito {

namespace {

constexpr char kMagic[] = "incognito-checkpoint";
constexpr int kFormatVersion = 1;

int64_t NowNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// C(n, s) for the small n the bitmask scheduler supports; saturates well
// below overflow for n <= 32.
uint64_t Binomial(int n, int s) {
  if (s < 0 || s > n) return 0;
  uint64_t r = 1;
  for (int i = 1; i <= s; ++i) r = r * (n - s + i) / i;
  return r;
}

std::string NodesToString(const std::vector<SubsetNode>& nodes) {
  if (nodes.empty()) return "-";
  std::vector<std::string> parts;
  parts.reserve(nodes.size());
  for (const SubsetNode& node : nodes) {
    std::vector<std::string> dims, levels;
    for (int32_t d : node.dims) dims.push_back(StringPrintf("%d", d));
    for (int32_t l : node.levels) levels.push_back(StringPrintf("%d", l));
    parts.push_back(Join(dims, ".") + "@" + Join(levels, "."));
  }
  return Join(parts, ";");
}

bool ParseIntList(std::string_view s, std::vector<int32_t>* out,
                  char sep = '.') {
  out->clear();
  if (s.empty()) return false;
  for (const std::string& field : Split(s, sep)) {
    int64_t v = 0;
    if (!ParseInt64(field, &v) || v < 0 || v > INT32_MAX) return false;
    out->push_back(static_cast<int32_t>(v));
  }
  return true;
}

bool ParseNodes(std::string_view s, std::vector<SubsetNode>* out) {
  out->clear();
  if (s == "-") return true;
  if (s.empty()) return false;
  for (const std::string& part : Split(s, ';')) {
    size_t at = part.find('@');
    if (at == std::string::npos) return false;
    SubsetNode node;
    if (!ParseIntList(std::string_view(part).substr(0, at), &node.dims) ||
        !ParseIntList(std::string_view(part).substr(at + 1), &node.levels)) {
      return false;
    }
    if (node.dims.size() != node.levels.size()) return false;
    // dims must be strictly ascending — the SubsetNode invariant.
    for (size_t i = 1; i < node.dims.size(); ++i) {
      if (node.dims[i] <= node.dims[i - 1]) return false;
    }
    out->push_back(std::move(node));
  }
  return true;
}

std::string CountersToString(const CheckpointCounters& c) {
  return StringPrintf("%lld,%lld,%lld,%lld,%lld,%lld",
                      static_cast<long long>(c.nodes_checked),
                      static_cast<long long>(c.nodes_marked),
                      static_cast<long long>(c.table_scans),
                      static_cast<long long>(c.rollups),
                      static_cast<long long>(c.freq_groups_built),
                      static_cast<long long>(c.candidate_nodes));
}

bool ParseCounters(std::string_view s, CheckpointCounters* out) {
  std::vector<std::string> fields = Split(s, ',');
  if (fields.size() != 6) return false;
  int64_t* slots[6] = {&out->nodes_checked,     &out->nodes_marked,
                       &out->table_scans,       &out->rollups,
                       &out->freq_groups_built, &out->candidate_nodes};
  for (size_t i = 0; i < 6; ++i) {
    if (!ParseInt64(fields[i], slots[i]) || *slots[i] < 0) return false;
  }
  return true;
}

// Parses "key=value" and returns the value, or nullopt-equivalent "".
bool TakeField(const std::vector<std::string>& fields, size_t index,
               std::string_view key, std::string_view* value) {
  if (index >= fields.size()) return false;
  std::string_view f = fields[index];
  if (f.size() <= key.size() + 1 || f.substr(0, key.size()) != key ||
      f[key.size()] != '=') {
    return false;
  }
  *value = f.substr(key.size() + 1);
  return true;
}

Status Corrupt(const std::string& what) {
  return Status::FailedPrecondition("corrupt checkpoint: " + what);
}

}  // namespace

uint32_t Crc32(const void* data, size_t len) {
  static const uint32_t* kTable = [] {
    static uint32_t table[256];
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int bit = 0; bit < 8; ++bit) {
        c = (c & 1) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
      }
      table[i] = c;
    }
    return table;
  }();
  uint32_t crc = 0xFFFFFFFFu;
  const unsigned char* p = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < len; ++i) {
    crc = kTable[(crc ^ p[i]) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

CheckpointCounters& CheckpointCounters::operator+=(
    const CheckpointCounters& o) {
  nodes_checked += o.nodes_checked;
  nodes_marked += o.nodes_marked;
  table_scans += o.table_scans;
  rollups += o.rollups;
  freq_groups_built += o.freq_groups_built;
  candidate_nodes += o.candidate_nodes;
  return *this;
}

CheckpointCounters& CheckpointCounters::operator-=(
    const CheckpointCounters& o) {
  nodes_checked -= o.nodes_checked;
  nodes_marked -= o.nodes_marked;
  table_scans -= o.table_scans;
  rollups -= o.rollups;
  freq_groups_built -= o.freq_groups_built;
  candidate_nodes -= o.candidate_nodes;
  return *this;
}

CheckpointFingerprint MakeCheckpointFingerprint(
    const Table& table, const QuasiIdentifier& qid,
    const AnonymizationConfig& config, const IncognitoOptions& options) {
  CheckpointFingerprint fp;
  fp.k = config.k;
  fp.max_suppressed = config.max_suppressed;
  fp.rows = table.num_rows();
  fp.heights = qid.MaxLevels();
  fp.variant = static_cast<int32_t>(options.variant);
  fp.mark_transitively = options.mark_transitively;
  fp.use_rollup = options.use_rollup;
  return fp;
}

std::string SerializeCheckpoint(const CheckpointSnapshot& snapshot) {
  std::string payload;
  {
    std::vector<std::string> heights;
    for (int32_t h : snapshot.fingerprint.heights) {
      heights.push_back(StringPrintf("%d", h));
    }
    payload += StringPrintf(
        "fingerprint k=%lld sup=%lld rows=%llu heights=%s variant=%d "
        "transitive=%d rollup=%d\n",
        static_cast<long long>(snapshot.fingerprint.k),
        static_cast<long long>(snapshot.fingerprint.max_suppressed),
        static_cast<unsigned long long>(snapshot.fingerprint.rows),
        Join(heights, ",").c_str(), snapshot.fingerprint.variant,
        snapshot.fingerprint.mark_transitively ? 1 : 0,
        snapshot.fingerprint.use_rollup ? 1 : 0);
  }
  for (const CheckpointRecord& record : snapshot.records) {
    payload += StringPrintf(
        "%s %u survivors=%s counters=%s\n",
        record.kind == CheckpointRecord::Kind::kIteration ? "iter" : "mask",
        record.key, NodesToString(record.survivors).c_str(),
        CountersToString(record.counters).c_str());
  }
  payload += "end\n";

  uint32_t crc = Crc32(payload.data(), payload.size());
  return StringPrintf("%s %d\ncrc %08x\n", kMagic, kFormatVersion, crc) +
         payload;
}

Result<CheckpointSnapshot> ParseCheckpoint(const std::string& content) {
  // Header: "<magic> <version>\n".
  size_t eol = content.find('\n');
  if (eol == std::string::npos) return Corrupt("missing header line");
  {
    std::vector<std::string> head = Split(content.substr(0, eol), ' ');
    int64_t version = 0;
    if (head.size() != 2 || head[0] != kMagic ||
        !ParseInt64(head[1], &version)) {
      return Corrupt("bad magic line");
    }
    if (version != kFormatVersion) {
      return Status::FailedPrecondition(StringPrintf(
          "checkpoint format version %lld is not supported (expected %d)",
          static_cast<long long>(version), kFormatVersion));
    }
  }
  // "crc <hex>\n".
  size_t crc_start = eol + 1;
  size_t crc_eol = content.find('\n', crc_start);
  if (crc_eol == std::string::npos) return Corrupt("missing crc line");
  uint32_t expected_crc = 0;
  {
    std::string crc_line = content.substr(crc_start, crc_eol - crc_start);
    if (crc_line.size() != 12 || crc_line.compare(0, 4, "crc ") != 0) {
      return Corrupt("bad crc line");
    }
    for (size_t i = 4; i < 12; ++i) {
      char c = crc_line[i];
      uint32_t digit;
      if (c >= '0' && c <= '9') {
        digit = c - '0';
      } else if (c >= 'a' && c <= 'f') {
        digit = 10 + (c - 'a');
      } else {
        return Corrupt("bad crc line");
      }
      expected_crc = (expected_crc << 4) | digit;
    }
  }
  const size_t payload_start = crc_eol + 1;
  uint32_t actual_crc = Crc32(content.data() + payload_start,
                              content.size() - payload_start);
  if (actual_crc != expected_crc) {
    return Corrupt(StringPrintf("crc mismatch (stored %08x, computed %08x)",
                                expected_crc, actual_crc));
  }

  CheckpointSnapshot snapshot;
  bool saw_fingerprint = false;
  bool saw_end = false;
  size_t pos = payload_start;
  std::set<std::pair<int, uint32_t>> seen_keys;
  while (pos < content.size()) {
    size_t line_eol = content.find('\n', pos);
    if (line_eol == std::string::npos) return Corrupt("unterminated line");
    std::string line = content.substr(pos, line_eol - pos);
    pos = line_eol + 1;
    if (saw_end) return Corrupt("data after end marker");
    if (line == "end") {
      saw_end = true;
      continue;
    }
    std::vector<std::string> fields = Split(line, ' ');
    if (fields.empty()) return Corrupt("empty line");
    if (fields[0] == "fingerprint") {
      if (saw_fingerprint) return Corrupt("duplicate fingerprint");
      if (fields.size() != 8) return Corrupt("bad fingerprint line");
      CheckpointFingerprint& fp = snapshot.fingerprint;
      std::string_view v;
      int64_t iv = 0;
      if (!TakeField(fields, 1, "k", &v) || !ParseInt64(v, &fp.k)) {
        return Corrupt("bad fingerprint k");
      }
      if (!TakeField(fields, 2, "sup", &v) ||
          !ParseInt64(v, &fp.max_suppressed)) {
        return Corrupt("bad fingerprint sup");
      }
      if (!TakeField(fields, 3, "rows", &v) || !ParseInt64(v, &iv) || iv < 0) {
        return Corrupt("bad fingerprint rows");
      }
      fp.rows = static_cast<uint64_t>(iv);
      if (!TakeField(fields, 4, "heights", &v)) {
        return Corrupt("bad fingerprint heights");
      }
      std::vector<int32_t> heights;
      if (!ParseIntList(v, &heights, ',')) {
        return Corrupt("bad fingerprint heights");
      }
      fp.heights = std::move(heights);
      if (!TakeField(fields, 5, "variant", &v) || !ParseInt64(v, &iv) ||
          iv < 0 || iv > 2) {
        return Corrupt("bad fingerprint variant");
      }
      fp.variant = static_cast<int32_t>(iv);
      if (!TakeField(fields, 6, "transitive", &v) || !ParseInt64(v, &iv) ||
          (iv != 0 && iv != 1)) {
        return Corrupt("bad fingerprint transitive");
      }
      fp.mark_transitively = iv == 1;
      if (!TakeField(fields, 7, "rollup", &v) || !ParseInt64(v, &iv) ||
          (iv != 0 && iv != 1)) {
        return Corrupt("bad fingerprint rollup");
      }
      fp.use_rollup = iv == 1;
      saw_fingerprint = true;
      continue;
    }
    if (fields[0] == "iter" || fields[0] == "mask") {
      if (!saw_fingerprint) return Corrupt("record before fingerprint");
      if (fields.size() != 4) return Corrupt("bad record line");
      CheckpointRecord record;
      record.kind = fields[0] == "iter" ? CheckpointRecord::Kind::kIteration
                                        : CheckpointRecord::Kind::kMask;
      int64_t key = 0;
      if (!ParseInt64(fields[1], &key) || key < 0 || key > UINT32_MAX) {
        return Corrupt("bad record key");
      }
      record.key = static_cast<uint32_t>(key);
      const int n = static_cast<int>(snapshot.fingerprint.heights.size());
      if (record.kind == CheckpointRecord::Kind::kIteration) {
        if (key < 1 || key > n) return Corrupt("iteration key out of range");
      } else {
        if (n > 32 || key < 1 || key >= (1ll << n)) {
          return Corrupt("mask key out of range");
        }
      }
      if (!seen_keys
               .insert({static_cast<int>(record.kind), record.key})
               .second) {
        return Corrupt("duplicate record key");
      }
      std::string_view v;
      if (!TakeField(fields, 2, "survivors", &v) ||
          !ParseNodes(v, &record.survivors)) {
        return Corrupt("bad record survivors");
      }
      for (const SubsetNode& node : record.survivors) {
        // Every node must fit the record's unit and the fingerprint shape.
        if (record.kind == CheckpointRecord::Kind::kIteration) {
          if (static_cast<int64_t>(node.dims.size()) != key) {
            return Corrupt("survivor size does not match iteration");
          }
        } else {
          uint32_t node_mask = 0;
          for (int32_t d : node.dims) {
            if (d >= n) return Corrupt("survivor dimension out of range");
            node_mask |= 1u << d;
          }
          if (node_mask != record.key) {
            return Corrupt("survivor dims do not match mask");
          }
        }
        for (size_t i = 0; i < node.dims.size(); ++i) {
          int32_t d = node.dims[i];
          if (d < 0 || d >= n ||
              node.levels[i] > snapshot.fingerprint.heights[d]) {
            return Corrupt("survivor level above hierarchy height");
          }
        }
      }
      if (!std::is_sorted(record.survivors.begin(), record.survivors.end())) {
        return Corrupt("survivors not sorted");
      }
      if (!TakeField(fields, 3, "counters", &v) ||
          !ParseCounters(v, &record.counters)) {
        return Corrupt("bad record counters");
      }
      snapshot.records.push_back(std::move(record));
      continue;
    }
    return Corrupt("unknown record kind '" + fields[0] + "'");
  }
  if (!saw_fingerprint) return Corrupt("missing fingerprint");
  if (!saw_end) return Corrupt("missing end marker");
  return snapshot;
}

Status WriteCheckpoint(const std::string& path,
                       const CheckpointSnapshot& snapshot) {
  return WriteFileAtomic(path, SerializeCheckpoint(snapshot),
                         "checkpoint.write");
}

Result<CheckpointSnapshot> LoadCheckpoint(const std::string& path) {
  Result<std::string> content = ReadFileToString(path, "checkpoint.load");
  if (!content.ok()) return content.status();
  return ParseCheckpoint(content.value());
}

std::vector<CheckpointLevel> LevelsFromSnapshot(
    const CheckpointSnapshot& snapshot, int n) {
  std::vector<CheckpointLevel> levels(n + 1);
  std::vector<uint64_t> masks_seen(n + 1, 0);
  std::vector<bool> from_iteration(n + 1, false);
  for (const CheckpointRecord& record : snapshot.records) {
    if (record.kind == CheckpointRecord::Kind::kIteration) {
      int s = static_cast<int>(record.key);
      if (s < 1 || s > n) continue;
      // An iteration record is authoritative for its whole level.
      levels[s].survivors = record.survivors;
      levels[s].counters = record.counters;
      levels[s].complete = true;
      from_iteration[s] = true;
    }
  }
  for (const CheckpointRecord& record : snapshot.records) {
    if (record.kind != CheckpointRecord::Kind::kMask) continue;
    int s = 0;
    for (uint32_t m = record.key; m != 0; m >>= 1) s += m & 1;
    if (s < 1 || s > n || from_iteration[s]) continue;
    ++masks_seen[s];
    levels[s].survivors.insert(levels[s].survivors.end(),
                               record.survivors.begin(),
                               record.survivors.end());
    levels[s].counters += record.counters;
  }
  for (int s = 1; s <= n; ++s) {
    if (from_iteration[s]) continue;
    if (masks_seen[s] == Binomial(n, s)) {
      levels[s].complete = true;
      std::sort(levels[s].survivors.begin(), levels[s].survivors.end());
    } else {
      levels[s] = CheckpointLevel{};
    }
  }
  return levels;
}

CheckpointManager::CheckpointManager(const CheckpointPolicy& policy,
                                     CheckpointFingerprint fingerprint)
    : policy_(policy), fingerprint_(std::move(fingerprint)) {}

void CheckpointManager::Seed(const CheckpointSnapshot& restored) {
  std::lock_guard<std::mutex> lock(mu_);
  for (const CheckpointRecord& record : restored.records) {
    records_[{static_cast<int>(record.kind), record.key}] = record;
  }
}

void CheckpointManager::AddIteration(uint32_t iteration,
                                     std::vector<SubsetNode> survivors,
                                     const CheckpointCounters& delta) {
  std::lock_guard<std::mutex> lock(mu_);
  CheckpointRecord record;
  record.kind = CheckpointRecord::Kind::kIteration;
  record.key = iteration;
  record.survivors = std::move(survivors);
  record.counters = delta;
  records_[{static_cast<int>(record.kind), record.key}] = std::move(record);
  dirty_ = true;
}

void CheckpointManager::AddMask(uint32_t mask,
                                std::vector<SubsetNode> survivors,
                                const CheckpointCounters& delta) {
  std::lock_guard<std::mutex> lock(mu_);
  CheckpointRecord record;
  record.kind = CheckpointRecord::Kind::kMask;
  record.key = mask;
  record.survivors = std::move(survivors);
  record.counters = delta;
  records_[{static_cast<int>(record.kind), record.key}] = std::move(record);
  dirty_ = true;
}

bool CheckpointManager::MaybeWrite() {
  std::lock_guard<std::mutex> lock(mu_);
  if (!policy_.enabled() || !dirty_) return false;
  if (policy_.interval_ms > 0 && last_write_ns_ >= 0 &&
      NowNanos() - last_write_ns_ < policy_.interval_ms * 1000000) {
    return false;
  }
  return WriteLocked();
}

bool CheckpointManager::WriteNow() {
  std::lock_guard<std::mutex> lock(mu_);
  if (!policy_.enabled() || !dirty_) return false;
  return WriteLocked();
}

bool CheckpointManager::WriteLocked() {
  CheckpointSnapshot snapshot;
  snapshot.fingerprint = fingerprint_;
  snapshot.records.reserve(records_.size());
  for (const auto& [key, record] : records_) snapshot.records.push_back(record);
  std::string content = SerializeCheckpoint(snapshot);
  Status status = RetryWithBackoff(policy_.retry, [&] {
    return WriteFileAtomic(policy_.path, content, "checkpoint.write");
  });
  last_write_ns_ = NowNanos();
  if (!status.ok()) {
    // Stay dirty: the next boundary (interval permitting) retries.
    ++write_failures_;
    return false;
  }
  dirty_ = false;
  ++writes_;
  bytes_written_ += static_cast<int64_t>(content.size());
  return true;
}

int64_t CheckpointManager::writes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return writes_;
}

int64_t CheckpointManager::bytes_written() const {
  std::lock_guard<std::mutex> lock(mu_);
  return bytes_written_;
}

int64_t CheckpointManager::write_failures() const {
  std::lock_guard<std::mutex> lock(mu_);
  return write_failures_;
}

}  // namespace incognito
