#ifndef INCOGNITO_ROBUST_RETRY_H_
#define INCOGNITO_ROBUST_RETRY_H_

#include <chrono>
#include <thread>
#include <utility>

#include "common/status.h"

namespace incognito {

/// Bounded retry-with-backoff for transient I/O. Only `kIOError` is
/// considered transient — every other code (parse errors, governance
/// trips, injected compute failures) is final and returned immediately.
///
/// The default policy makes up to 3 attempts with a 1 ms first backoff
/// doubling per attempt; `RetryPolicy::None()` (one attempt, no sleep)
/// turns the wrapper into a plain call, which is the default everywhere a
/// caller has not opted in — notably the CSV/hierarchy readers, so
/// scripted single-shot fault tests still see the failure surface.
struct RetryPolicy {
  int max_attempts = 3;
  int backoff_ms = 1;
  double multiplier = 2.0;

  static RetryPolicy None() { return RetryPolicy{1, 0, 1.0}; }

  bool enabled() const { return max_attempts > 1; }
};

namespace retry_internal {

inline bool IsTransient(const Status& s) {
  return s.code() == StatusCode::kIOError;
}

template <typename T>
bool IsTransient(const Result<T>& r) {
  return !r.ok() && r.status().code() == StatusCode::kIOError;
}

}  // namespace retry_internal

/// Calls `fn` (returning Status or Result<T>) up to `policy.max_attempts`
/// times, sleeping `backoff_ms * multiplier^i` between attempts, while
/// the outcome is a transient `kIOError`. Deterministically testable with
/// the one-shot FaultInjector scripting: a scripted fault consumes itself
/// on its first hit, so the retry's second attempt succeeds.
template <typename Fn>
auto RetryWithBackoff(const RetryPolicy& policy, Fn&& fn) -> decltype(fn()) {
  auto result = fn();
  double delay_ms = policy.backoff_ms;
  for (int attempt = 1;
       attempt < policy.max_attempts && retry_internal::IsTransient(result);
       ++attempt) {
    if (delay_ms >= 1.0) {
      std::this_thread::sleep_for(
          std::chrono::milliseconds(static_cast<int64_t>(delay_ms)));
    }
    delay_ms *= policy.multiplier;
    result = fn();
  }
  return result;
}

}  // namespace incognito

#endif  // INCOGNITO_ROBUST_RETRY_H_
