#include "robust/fault_injector.h"

#include <algorithm>
#include <csignal>

#include "common/random.h"
#include "common/strings.h"

namespace incognito {

FaultInjector& FaultInjector::Global() {
  static FaultInjector* injector = new FaultInjector();
  return *injector;
}

const std::vector<std::string>& FaultInjector::KnownSites() {
  // Keep in sync with the call sites and the fault-site catalog in
  // docs/ROBUSTNESS.md; robust_test.cc iterates this list.
  static const std::vector<std::string>* sites = new std::vector<std::string>{
      "csv.read.open",
      "csv.write.open",
      "csv.write.io",
      "csv.write.rename",
      "hierarchy_csv.read.open",
      "hierarchy_csv.write.open",
      "hierarchy_csv.write.io",
      "hierarchy_csv.write.rename",
      "binary_io.read.open",
      "binary_io.read.io",
      "binary_io.write.open",
      "binary_io.write.io",
      "binary_io.write.rename",
      "governor.charge",
      "cube.build",
      "cube.project",
      "freq.scan.chunk",
      "freq.batch.scan",
      "incognito.rollup",
      "incognito.subset.schedule",
      "bottom_up.rollup",
      "checkpoint.write.open",
      "checkpoint.write.io",
      "checkpoint.write.rename",
      "checkpoint.load.open",
      "service.admit",
      "service.job.run",
      "service.reply.write",
  };
  return *sites;
}

void FaultInjector::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  hits_.clear();
  scripted_.clear();
  kill_scripted_.clear();
  random_armed_ = false;
  rng_state_ = 0;
  probability_ = 0;
  fired_ = 0;
}

void FaultInjector::EnableRandom(uint64_t seed, double probability) {
  std::lock_guard<std::mutex> lock(mu_);
  random_armed_ = true;
  rng_state_ = seed;
  probability_ = probability;
}

void FaultInjector::ScriptFailNthHit(const std::string& site, int64_t nth) {
  std::lock_guard<std::mutex> lock(mu_);
  scripted_[site] = nth;
}

void FaultInjector::ScriptKillNthHit(const std::string& site, int64_t nth) {
  std::lock_guard<std::mutex> lock(mu_);
  kill_scripted_[site] = nth;
}

Status FaultInjector::Configure(const std::string& spec) {
  std::vector<std::string> parts = Split(spec, ':');
  if (parts.size() == 3 && parts[0] == "kill") {
    const std::vector<std::string>& known = KnownSites();
    if (std::find(known.begin(), known.end(), parts[1]) == known.end()) {
      return Status::InvalidArgument("unknown fault site '" + parts[1] +
                                     "'");
    }
    int64_t nth = 0;
    if (!ParseInt64(parts[2], &nth) || nth < 1) {
      return Status::InvalidArgument("bad fault spec '" + spec +
                                     "' (want kill:SITE:N with N >= 1)");
    }
    ScriptKillNthHit(parts[1], nth);
    return Status::OK();
  }
  if (parts.size() == 3 && parts[0] == "rand") {
    int64_t seed = 0;
    double prob = 0;
    if (!ParseInt64(parts[1], &seed) || !ParseDouble(parts[2], &prob) ||
        prob < 0 || prob > 1) {
      return Status::InvalidArgument("bad fault spec '" + spec +
                                     "' (want rand:SEED:PROB)");
    }
    EnableRandom(static_cast<uint64_t>(seed), prob);
    return Status::OK();
  }
  if (parts.size() == 2) {
    const std::vector<std::string>& known = KnownSites();
    if (std::find(known.begin(), known.end(), parts[0]) == known.end()) {
      return Status::InvalidArgument("unknown fault site '" + parts[0] +
                                     "'");
    }
    int64_t nth = 0;
    if (!ParseInt64(parts[1], &nth) || nth < 1) {
      return Status::InvalidArgument("bad fault spec '" + spec +
                                     "' (want SITE:N with N >= 1)");
    }
    ScriptFailNthHit(parts[0], nth);
    return Status::OK();
  }
  return Status::InvalidArgument(
      "bad fault spec '" + spec +
      "' (want SITE:N, kill:SITE:N, or rand:SEED:PROB)");
}

bool FaultInjector::Hit(const std::string& site) {
  std::lock_guard<std::mutex> lock(mu_);
  int64_t count = ++hits_[site];
  auto kill_it = kill_scripted_.find(site);
  if (kill_it != kill_scripted_.end() && count == kill_it->second) {
    // A scripted crash: die with no unwinding, flushing, or cleanup — the
    // strongest failure the checkpoint/resume contract must survive.
    raise(SIGKILL);
  }
  auto it = scripted_.find(site);
  if (it != scripted_.end() && count == it->second) {
    scripted_.erase(it);  // one-shot: a retry of the operation succeeds
    ++fired_;
    return true;
  }
  if (random_armed_) {
    Rng rng(rng_state_);
    double draw = rng.NextDouble();
    rng_state_ = rng.Next();  // advance the deterministic stream
    if (draw < probability_) {
      ++fired_;
      return true;
    }
  }
  return false;
}

int64_t FaultInjector::HitCount(const std::string& site) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = hits_.find(site);
  return it == hits_.end() ? 0 : it->second;
}

int64_t FaultInjector::FaultsFired() const {
  std::lock_guard<std::mutex> lock(mu_);
  return fired_;
}

}  // namespace incognito
