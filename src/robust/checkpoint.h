#ifndef INCOGNITO_ROBUST_CHECKPOINT_H_
#define INCOGNITO_ROBUST_CHECKPOINT_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "lattice/node.h"
#include "robust/retry.h"

namespace incognito {

class QuasiIdentifier;
class Table;
struct AnonymizationConfig;
struct IncognitoOptions;

/// Crash-safe checkpoint/restore for the Incognito lattice search
/// (docs/ROBUSTNESS.md "Checkpoint format & recovery contract").
///
/// The search is monotone at subset granularity: once a subset's candidate
/// graph has been fully evaluated its surviving nodes are final, and the
/// Rollup Property (paper §3.3) lets every larger subset warm-start from
/// them. A checkpoint is therefore just the set of finished units —
/// per-iteration survivor sets for the serial/barrier loops, per-subset
/// (bitmask) survivor sets for the pipelined DAG — plus the counter deltas
/// each unit contributed, so a resumed run reports totals bit-identical to
/// an uninterrupted one.

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) over `len` bytes.
uint32_t Crc32(const void* data, size_t len);

/// How `--resume` treats a missing/invalid checkpoint file.
enum class ResumeMode {
  kOff,      ///< ignore any existing checkpoint; start fresh
  kAuto,     ///< resume when a valid compatible checkpoint exists, else fresh
  kRequire,  ///< fail (I/O or precondition error) when resume is impossible
};

/// Checkpointing configuration, threaded through RunContext. The policy is
/// inert (`enabled() == false`) unless a path is set.
struct CheckpointPolicy {
  /// Checkpoint file path; empty disables checkpointing entirely.
  std::string path;
  /// Minimum milliseconds between periodic writes; 0 writes at every
  /// completed-unit boundary. A governor trip always spills immediately.
  int64_t interval_ms = 0;
  ResumeMode resume = ResumeMode::kOff;
  /// Retry policy for checkpoint *writes* issued by the manager; load and
  /// the direct Write/LoadCheckpoint calls never retry.
  RetryPolicy retry;

  bool enabled() const { return !path.empty(); }
};

/// Identifies the run a checkpoint belongs to. Everything that changes the
/// search outcome participates; thread count and scheduling mode do NOT
/// (all modes are bit-identical, so checkpoints are portable across them).
struct CheckpointFingerprint {
  int64_t k = 0;
  int64_t max_suppressed = 0;
  uint64_t rows = 0;
  std::vector<int32_t> heights;  ///< per-attribute hierarchy heights
  int32_t variant = 0;           ///< IncognitoVariant as an integer
  bool mark_transitively = true;
  bool use_rollup = true;

  bool operator==(const CheckpointFingerprint& other) const {
    return k == other.k && max_suppressed == other.max_suppressed &&
           rows == other.rows && heights == other.heights &&
           variant == other.variant &&
           mark_transitively == other.mark_transitively &&
           use_rollup == other.use_rollup;
  }
  bool operator!=(const CheckpointFingerprint& other) const {
    return !(*this == other);
  }
};

/// Builds the fingerprint of the current run.
CheckpointFingerprint MakeCheckpointFingerprint(
    const Table& table, const QuasiIdentifier& qid,
    const AnonymizationConfig& config, const IncognitoOptions& options);

/// The deterministic solution counters a finished unit contributed —
/// exactly the AlgorithmStats fields covered by the bit-identity contract
/// (docs/PARALLELISM.md). Governor/timing fields are never checkpointed.
struct CheckpointCounters {
  int64_t nodes_checked = 0;
  int64_t nodes_marked = 0;
  int64_t table_scans = 0;
  int64_t rollups = 0;
  int64_t freq_groups_built = 0;
  int64_t candidate_nodes = 0;

  CheckpointCounters& operator+=(const CheckpointCounters& o);
  CheckpointCounters& operator-=(const CheckpointCounters& o);
};

/// One finished unit of search progress.
struct CheckpointRecord {
  enum class Kind {
    kIteration,  ///< key = subset size i; survivors merged over all
                 ///< i-attribute subsets (serial / barrier writer)
    kMask,       ///< key = attribute-dimension bitmask (pipelined writer);
                 ///< the full mask is the apex (final) search
  };
  Kind kind = Kind::kIteration;
  uint32_t key = 0;
  std::vector<SubsetNode> survivors;  ///< sorted ascending (SubsetNode <)
  CheckpointCounters counters;
};

struct CheckpointSnapshot {
  CheckpointFingerprint fingerprint;
  std::vector<CheckpointRecord> records;
};

/// On-disk text format, versioned and CRC-checksummed:
///
///   incognito-checkpoint 1
///   crc <8 lowercase hex digits>
///   fingerprint k=... sup=... rows=... heights=h0,h1,... variant=...
///     transitive=0|1 rollup=0|1                     (one line)
///   iter <i> survivors=<nodes> counters=<6 ints>
///   mask <m> survivors=<nodes> counters=<6 ints>
///   end
///
/// <nodes> is `;`-separated `dims@levels` with `.`-separated ints, or `-`
/// for an empty set. The CRC covers every byte after the crc line.
std::string SerializeCheckpoint(const CheckpointSnapshot& snapshot);

/// Strict bounds-checked parser. Corruption (bad magic, unsupported
/// version, CRC mismatch, truncation, malformed records) comes back as
/// FailedPrecondition — the CLI's documented exit code 3.
Result<CheckpointSnapshot> ParseCheckpoint(const std::string& content);

/// Serializes and writes atomically via safe_io (temp + rename; fault
/// sites checkpoint.write.{open,io,rename}). No retry at this layer.
Status WriteCheckpoint(const std::string& path,
                       const CheckpointSnapshot& snapshot);

/// Reads (fault site checkpoint.load.open) and parses. A missing or
/// unreadable file is IOError (exit code 4); corruption is
/// FailedPrecondition (exit code 3). No retry at this layer.
Result<CheckpointSnapshot> LoadCheckpoint(const std::string& path);

/// Per-subset-size view over a snapshot, for the serial/barrier resume
/// path and for cross-mode conversion.
struct CheckpointLevel {
  bool complete = false;              ///< every subset of this size is covered
  std::vector<SubsetNode> survivors;  ///< merged, sorted
  CheckpointCounters counters;        ///< summed over the level's units
};

/// Folds a snapshot into per-size levels for an `n`-attribute QID (index
/// 1..n; index 0 unused). A level is complete when an iteration record
/// exists for it or when mask records cover all C(n,s) subsets of size s.
std::vector<CheckpointLevel> LevelsFromSnapshot(
    const CheckpointSnapshot& snapshot, int n);

/// Accumulates finished units and writes policy-gated snapshots.
/// Internally synchronized; safe to call from pipeline workers (call it
/// OUTSIDE the scheduler lock — writes do file I/O).
class CheckpointManager {
 public:
  CheckpointManager(const CheckpointPolicy& policy,
                    CheckpointFingerprint fingerprint);

  /// Seeds the record map from a restored snapshot so the resumed run's
  /// checkpoints carry the full history.
  void Seed(const CheckpointSnapshot& restored);

  void AddIteration(uint32_t iteration, std::vector<SubsetNode> survivors,
                    const CheckpointCounters& delta);
  void AddMask(uint32_t mask, std::vector<SubsetNode> survivors,
               const CheckpointCounters& delta);

  /// Policy-gated periodic write (interval_ms); returns true when a write
  /// was attempted. Failures are counted, never fatal.
  bool MaybeWrite();
  /// Writes pending records ignoring the interval — used to spill on a
  /// governor trip and to make the final unit durable at the end of a run.
  /// No-op (false) when nothing new has been recorded since the last
  /// successful write; true on a successful write.
  bool WriteNow();

  int64_t writes() const;
  int64_t bytes_written() const;
  int64_t write_failures() const;

 private:
  bool WriteLocked();

  const CheckpointPolicy policy_;
  const CheckpointFingerprint fingerprint_;
  mutable std::mutex mu_;
  std::map<std::pair<int, uint32_t>, CheckpointRecord> records_;
  bool dirty_ = false;
  int64_t last_write_ns_ = -1;
  int64_t writes_ = 0;
  int64_t bytes_written_ = 0;
  int64_t write_failures_ = 0;
};

}  // namespace incognito

#endif  // INCOGNITO_ROBUST_CHECKPOINT_H_
