#ifndef INCOGNITO_ROBUST_GOVERNOR_H_
#define INCOGNITO_ROBUST_GOVERNOR_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <limits>
#include <mutex>

#include "common/status.h"

namespace incognito {

struct AlgorithmStats;

/// A cooperative, monotonic-clock deadline. Default-constructed deadlines
/// never expire; AfterMillis(ms) expires `ms` milliseconds from now.
/// Checking an infinite deadline never reads the clock.
class Deadline {
 public:
  Deadline() = default;  // infinite

  static Deadline Infinite() { return Deadline(); }

  /// A deadline `ms` milliseconds from now; ms < 0 means infinite, ms == 0
  /// is already expired (useful to force an immediate budget trip).
  static Deadline AfterMillis(int64_t ms) {
    Deadline d;
    if (ms >= 0) {
      d.infinite_ = false;
      d.expires_ =
          std::chrono::steady_clock::now() + std::chrono::milliseconds(ms);
    }
    return d;
  }

  bool infinite() const { return infinite_; }

  bool Expired() const {
    return !infinite_ && std::chrono::steady_clock::now() >= expires_;
  }

  /// Seconds until expiry (negative once expired); +infinity when infinite.
  double RemainingSeconds() const {
    if (infinite_) return std::numeric_limits<double>::infinity();
    return std::chrono::duration<double>(expires_ -
                                         std::chrono::steady_clock::now())
        .count();
  }

 private:
  bool infinite_ = true;
  std::chrono::steady_clock::time_point expires_{};
};

/// A cancellation flag settable from any thread. The governed algorithms
/// poll it at lattice-node granularity, so cancellation takes effect within
/// one node-check of Cancel() being called.
class CancelToken {
 public:
  CancelToken() = default;
  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  void Cancel() { cancelled_.store(true, std::memory_order_release); }
  bool Cancelled() const {
    return cancelled_.load(std::memory_order_acquire);
  }

 private:
  std::atomic<bool> cancelled_{false};
};

/// Byte accounting for the memory-hungry structures the search algorithms
/// build (frequency sets, the zero-generalization cube, Apriori hash
/// trees). Charges are approximate heap footprints reported by the
/// structures themselves (FrequencySet::MemoryBytes etc.); a limit of 0
/// means unlimited.
class MemoryBudget {
 public:
  MemoryBudget() = default;
  explicit MemoryBudget(int64_t limit_bytes) : limit_(limit_bytes) {}
  MemoryBudget(const MemoryBudget&) = delete;
  MemoryBudget& operator=(const MemoryBudget&) = delete;

  /// Replaces the limit and clears the byte accounting. Call before a run,
  /// never mid-run.
  void SetLimit(int64_t limit_bytes) {
    limit_ = limit_bytes;
    used_.store(0, std::memory_order_relaxed);
    peak_.store(0, std::memory_order_relaxed);
  }

  /// Adds `bytes` to the live total. Returns false — without charging —
  /// when the addition would push the total past the limit.
  bool TryCharge(int64_t bytes) {
    int64_t next = used_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
    if (limit_ > 0 && next > limit_) {
      used_.fetch_sub(bytes, std::memory_order_relaxed);
      return false;
    }
    int64_t peak = peak_.load(std::memory_order_relaxed);
    while (next > peak &&
           !peak_.compare_exchange_weak(peak, next,
                                        std::memory_order_relaxed)) {
    }
    return true;
  }

  void Release(int64_t bytes) {
    used_.fetch_sub(bytes, std::memory_order_relaxed);
  }

  int64_t limit() const { return limit_; }
  int64_t used() const { return used_.load(std::memory_order_relaxed); }
  int64_t peak() const { return peak_.load(std::memory_order_relaxed); }

 private:
  int64_t limit_ = 0;  // 0 = unlimited
  std::atomic<int64_t> used_{0};
  std::atomic<int64_t> peak_{0};
};

/// Counts of governor activity during one governed run; exported into
/// AlgorithmStats so run reports show *why* a run degraded.
struct GovernorTrips {
  int64_t checks = 0;          ///< cooperative checkpoints evaluated
  int64_t deadline_trips = 0;  ///< checkpoints that saw an expired deadline
  int64_t memory_trips = 0;    ///< charges refused by the memory budget
  int64_t cancel_trips = 0;    ///< checkpoints that saw cancellation
};

/// Bundles the three cooperative budgets every governed entry point
/// accepts: a Deadline, an optional CancelToken (owned by the caller, who
/// may Cancel() it from another thread), and a MemoryBudget.
///
/// Algorithms call Check() once per lattice node and ChargeMemory() at
/// every frequency-set/cube/hash-tree allocation site. The first non-OK
/// outcome latches: every later Check() returns the same status, so one
/// trip unwinds the whole search deterministically. Construct a fresh
/// governor per run; trip state and byte accounting are not reusable.
class ExecutionGovernor {
 public:
  ExecutionGovernor() = default;
  ExecutionGovernor(const ExecutionGovernor&) = delete;
  ExecutionGovernor& operator=(const ExecutionGovernor&) = delete;

  void SetDeadline(Deadline deadline) { deadline_ = deadline; }
  void SetCancelToken(const CancelToken* token) { cancel_ = token; }
  void SetMemoryLimitBytes(int64_t bytes) { memory_.SetLimit(bytes); }

  /// The cooperative checkpoint: returns OK to continue, or the (latched)
  /// trip status. Cancellation is checked before the deadline so an
  /// explicit Cancel() wins the race against an expiring clock.
  Status Check();

  /// Charges `bytes` against the memory budget; kResourceExhausted (also
  /// latched) when the budget refuses. Compiled with INCOGNITO_FAULTS this
  /// is an allocation-failure injection site ("governor.charge").
  Status ChargeMemory(int64_t bytes);

  void ReleaseMemory(int64_t bytes) { memory_.Release(bytes); }

  /// Latches an injected allocation failure at `site` exactly as if the
  /// memory budget had refused a charge (used by the compute-path fault
  /// points in the rollup/cube code, whose enclosing functions cannot
  /// return a Status directly; the search unwinds at its next checkpoint
  /// or charge). Thread-safe. Returns the latched trip.
  Status LatchInjectedFailure(const char* site);

  bool Tripped() const { return !trip_.ok(); }
  const Status& TripStatus() const { return trip_; }
  const GovernorTrips& trips() const { return trips_; }
  const MemoryBudget& memory() const { return memory_; }
  const Deadline& deadline() const { return deadline_; }
  const CancelToken* cancel_token() const { return cancel_; }

  /// Snapshots this governor's trip counters into `stats` (the governed
  /// entry points call this before returning). Overwrite semantics: the
  /// stats fields always reflect this governor's lifetime totals, so
  /// repeated exports during one run never double-count.
  void ExportTrips(AlgorithmStats* stats) const;

  // --- Shard support (thread-safe; used by GovernorShard) -----------------
  //
  // The serial methods above touch trip state without locking, which is
  // fine for the single-threaded search loops. Parallel search instead
  // gives each worker a GovernorShard; shards reach the shared budget only
  // through the three calls below (an atomic budget operation plus a
  // mutex-guarded trip latch), so worker threads never race the governor's
  // plain members. The parallel driver itself only calls the serial
  // methods while the worker pool is quiescent.

  /// Leases `bytes` straight from the memory budget without touching trip
  /// state. Returns false when the budget refuses. Thread-safe.
  bool TryLeaseMemory(int64_t bytes) { return memory_.TryCharge(bytes); }

  /// Returns previously leased bytes to the budget. Thread-safe.
  void ReturnLeasedMemory(int64_t bytes) { memory_.Release(bytes); }

  /// First-trip latch shared by all shards: the first caller's status is
  /// stored and returned to everyone (so one worker's trip stops the
  /// others at their next checkpoint). Thread-safe.
  Status LatchSharedTrip(Status trip);

  /// The latched shared trip, or OK when none. Thread-safe.
  Status SharedTrip() const;

  /// Folds a drained shard's trip counters into this governor's totals so
  /// ExportTrips reflects the whole parallel run. Call only while the
  /// worker pool is quiescent (GovernorShard::Drain does).
  void AbsorbShardTrips(const GovernorTrips& trips);

 private:
  Deadline deadline_;
  const CancelToken* cancel_ = nullptr;
  MemoryBudget memory_;
  GovernorTrips trips_;
  Status trip_;  // first trip, latched
  mutable std::mutex shared_mu_;  // guards trip_ for the shard-side calls
};

/// A worker-local view of a shared ExecutionGovernor for parallel search
/// (docs/PARALLELISM.md). Each worker owns one shard and charges its
/// frequency sets against it; the shard leases bytes from the shared
/// MemoryBudget in `lease_chunk_bytes` slabs so workers do not contend on
/// the global counter for every small charge.
///
/// Leases are monotonic: a shard never returns bytes mid-run, only at
/// Drain(). Because every live lease is charged to the shared budget, the
/// sum of all shards' high-water (peak-lease) marks can never exceed the
/// global limit — the invariant tests/property_test.cc checks.
///
/// Check() observes the parent's Deadline/CancelToken and the shared trip
/// latch, so a trip in any worker (or in the main thread) stops every
/// shard within one node-check. Not thread-safe itself: one shard belongs
/// to exactly one worker, plus the quiescent main thread during merges.
class GovernorShard {
 public:
  static constexpr int64_t kDefaultLeaseChunkBytes = int64_t{256} << 10;

  explicit GovernorShard(ExecutionGovernor* parent,
                         int64_t lease_chunk_bytes = kDefaultLeaseChunkBytes);
  ~GovernorShard();
  GovernorShard(const GovernorShard&) = delete;
  GovernorShard& operator=(const GovernorShard&) = delete;

  /// The cooperative checkpoint: local latch, then the shared latch, then
  /// cancellation, then the deadline. A fresh trip is published to the
  /// shared latch so sibling shards stop too.
  Status Check();

  /// Charges `bytes` against this shard, leasing another slab from the
  /// shared budget when the current lease is exhausted. A refused lease
  /// trips (kResourceExhausted), latches shared, and is retried at exact
  /// size first so small global budgets behave like the serial path.
  /// Compiled with INCOGNITO_FAULTS this hits the "governor.charge" site.
  Status ChargeMemory(int64_t bytes);

  /// Returns `bytes` to this shard's local accounting (the lease itself
  /// stays; Drain returns it to the shared budget).
  void ReleaseMemory(int64_t bytes);

  /// Returns every leased byte to the parent and folds this shard's trip
  /// counters into it. Idempotent; called by the destructor. After Drain
  /// the shard must not be charged again.
  void Drain();

  int64_t leased_bytes() const { return leased_; }
  int64_t used_bytes() const { return used_; }
  /// Peak lease, == final lease since leases are monotonic until Drain.
  int64_t high_water_bytes() const { return high_water_; }
  const GovernorTrips& trips() const { return trips_; }
  bool tripped() const { return !trip_.ok(); }

 private:
  ExecutionGovernor* parent_;
  int64_t chunk_;
  int64_t leased_ = 0;
  int64_t used_ = 0;
  int64_t high_water_ = 0;
  GovernorTrips trips_;
  Status trip_;  // local copy of the first trip this shard observed
  bool drained_ = false;
};

}  // namespace incognito

#endif  // INCOGNITO_ROBUST_GOVERNOR_H_
