#ifndef INCOGNITO_ROBUST_PARTIAL_RESULT_H_
#define INCOGNITO_ROBUST_PARTIAL_RESULT_H_

#include <cassert>
#include <utility>

#include "common/status.h"

namespace incognito {

/// The return type of governed entry points (the ExecutionGovernor
/// overloads of RunIncognito and friends). Unlike Result<T>, a non-OK
/// status does not necessarily discard the value: when a cooperative
/// budget trips (kDeadlineExceeded / kResourceExhausted / kCancelled) the
/// value holds everything *proven* before the trip — e.g. the nodes
/// confirmed k-anonymous so far — and is sound, just possibly incomplete.
///
/// Three states:
///   complete()    status is OK; the value is the full answer.
///   partial()     status is a resource-governance code; the value is a
///                 valid prefix of the answer (possibly empty).
///   hard_error()  any other non-OK status (invalid argument, I/O, ...);
///                 the value is default-constructed and meaningless.
template <typename T>
class PartialResult {
 public:
  /// Implicit construction from a value: a complete result.
  PartialResult(T value) : value_(std::move(value)) {}

  /// Implicit construction from a non-OK status: a hard error.
  PartialResult(Status status) : status_(std::move(status)) {
    assert(!status_.ok() &&
           "PartialResult constructed from OK status without value");
  }

  /// A partial result: a budget trip plus everything proven so far.
  static PartialResult Partial(Status status, T value) {
    assert(IsResourceGovernance(status.code()));
    PartialResult r(std::move(value));
    r.status_ = std::move(status);
    return r;
  }

  bool complete() const { return status_.ok(); }
  bool partial() const { return IsResourceGovernance(status_.code()); }
  bool hard_error() const { return !complete() && !partial(); }

  /// Result<T>-compatible spelling of complete(), so call sites migrating
  /// from the legacy ungoverned overloads (docs/API.md) keep reading
  /// naturally. Note it is false on a partial() result even though the
  /// value is sound — check partial() before discarding the value.
  bool ok() const { return status_.ok(); }

  const Status& status() const { return status_; }

  /// The (full or partial) value; meaningless after a hard error.
  const T& value() const& { return value_; }
  T& value() & { return value_; }
  T&& value() && { return std::move(value_); }

  const T& operator*() const& { return value_; }
  T& operator*() & { return value_; }
  const T* operator->() const { return &value_; }
  T* operator->() { return &value_; }

 private:
  Status status_;
  T value_{};
};

}  // namespace incognito

#endif  // INCOGNITO_ROBUST_PARTIAL_RESULT_H_
