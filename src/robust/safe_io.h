#ifndef INCOGNITO_ROBUST_SAFE_IO_H_
#define INCOGNITO_ROBUST_SAFE_IO_H_

#include <string>

#include "common/status.h"

namespace incognito {

/// Reads a whole file into a string. `fault_site_prefix` names the
/// injection site family ("<prefix>.open"); see robust/fault_injector.h.
Result<std::string> ReadFileToString(const std::string& path,
                                     const std::string& fault_site_prefix);

/// Writes `content` to `path` atomically: the bytes go to a sibling
/// temporary file ("<path>.tmp.<pid>") which is renamed over `path` only
/// after a successful flush — a failure at any step (open, write, rename,
/// or an injected fault at "<prefix>.open"/"<prefix>.io"/"<prefix>.rename")
/// removes the temporary and leaves no partial output file behind.
Status WriteFileAtomic(const std::string& path, const std::string& content,
                       const std::string& fault_site_prefix);

}  // namespace incognito

#endif  // INCOGNITO_ROBUST_SAFE_IO_H_
