#include "robust/governor.h"

#include "common/strings.h"
#include "core/checker.h"
#include "obs/obs.h"
#include "robust/fault_injector.h"

namespace incognito {

Status ExecutionGovernor::Check() {
  if (!trip_.ok()) return trip_;
  ++trips_.checks;
  if (cancel_ != nullptr && cancel_->Cancelled()) {
    ++trips_.cancel_trips;
    INCOGNITO_COUNT("governor.cancel_trips");
    trip_ = Status::Cancelled("cancelled by caller");
    return trip_;
  }
  if (deadline_.Expired()) {
    ++trips_.deadline_trips;
    INCOGNITO_COUNT("governor.deadline_trips");
    trip_ = Status::DeadlineExceeded("deadline expired");
    return trip_;
  }
  return Status::OK();
}

Status ExecutionGovernor::ChargeMemory(int64_t bytes) {
  INCOGNITO_FAULT_POINT("governor.charge",
                        Status::ResourceExhausted(
                            "injected allocation failure (governor.charge)"));
  if (!trip_.ok()) return trip_;
  if (!memory_.TryCharge(bytes)) {
    ++trips_.memory_trips;
    INCOGNITO_COUNT("governor.memory_trips");
    Status refused = Status::ResourceExhausted(StringPrintf(
        "memory budget exceeded: %lld bytes used + %lld requested > %lld "
        "limit",
        static_cast<long long>(memory_.used()),
        static_cast<long long>(bytes),
        static_cast<long long>(memory_.limit())));
    if (trip_.ok()) trip_ = refused;
    return refused;
  }
  return Status::OK();
}

void ExecutionGovernor::ExportTrips(AlgorithmStats* stats) const {
  stats->governor_checks = trips_.checks;
  stats->deadline_trips = trips_.deadline_trips;
  stats->memory_trips = trips_.memory_trips;
  stats->cancel_trips = trips_.cancel_trips;
}

}  // namespace incognito
