#include "robust/governor.h"

#include "common/strings.h"
#include "core/checker.h"
#include "obs/obs.h"
#include "robust/fault_injector.h"

namespace incognito {

Status ExecutionGovernor::Check() {
  if (!trip_.ok()) return trip_;
  ++trips_.checks;
  if (cancel_ != nullptr && cancel_->Cancelled()) {
    ++trips_.cancel_trips;
    INCOGNITO_COUNT("governor.cancel_trips");
    trip_ = Status::Cancelled("cancelled by caller");
    return trip_;
  }
  if (deadline_.Expired()) {
    ++trips_.deadline_trips;
    INCOGNITO_COUNT("governor.deadline_trips");
    trip_ = Status::DeadlineExceeded("deadline expired");
    return trip_;
  }
  return Status::OK();
}

Status ExecutionGovernor::ChargeMemory(int64_t bytes) {
  if (INCOGNITO_FAULT_FIRED("governor.charge")) {
    // Behaves exactly like a refused charge, latch included — callers
    // (e.g. the cube builds) detect a stopped computation via Tripped().
    return LatchInjectedFailure("governor.charge");
  }
  if (!trip_.ok()) return trip_;
  if (!memory_.TryCharge(bytes)) {
    ++trips_.memory_trips;
    INCOGNITO_COUNT("governor.memory_trips");
    Status refused = Status::ResourceExhausted(StringPrintf(
        "memory budget exceeded: %lld bytes used + %lld requested > %lld "
        "limit",
        static_cast<long long>(memory_.used()),
        static_cast<long long>(bytes),
        static_cast<long long>(memory_.limit())));
    if (trip_.ok()) trip_ = refused;
    return refused;
  }
  return Status::OK();
}

Status ExecutionGovernor::LatchInjectedFailure(const char* site) {
  std::lock_guard<std::mutex> lock(shared_mu_);
  if (trip_.ok()) {
    ++trips_.memory_trips;
    INCOGNITO_COUNT("governor.memory_trips");
    trip_ = Status::ResourceExhausted(
        std::string("injected allocation failure (") + site + ")");
  }
  return trip_;
}

void ExecutionGovernor::ExportTrips(AlgorithmStats* stats) const {
  stats->governor_checks = trips_.checks;
  stats->deadline_trips = trips_.deadline_trips;
  stats->memory_trips = trips_.memory_trips;
  stats->cancel_trips = trips_.cancel_trips;
}

Status ExecutionGovernor::LatchSharedTrip(Status trip) {
  std::lock_guard<std::mutex> lock(shared_mu_);
  if (trip_.ok()) trip_ = std::move(trip);
  return trip_;
}

Status ExecutionGovernor::SharedTrip() const {
  std::lock_guard<std::mutex> lock(shared_mu_);
  return trip_;
}

void ExecutionGovernor::AbsorbShardTrips(const GovernorTrips& trips) {
  trips_.checks += trips.checks;
  trips_.deadline_trips += trips.deadline_trips;
  trips_.memory_trips += trips.memory_trips;
  trips_.cancel_trips += trips.cancel_trips;
}

// ---------------------------------------------------------------------------
// GovernorShard
// ---------------------------------------------------------------------------

GovernorShard::GovernorShard(ExecutionGovernor* parent,
                             int64_t lease_chunk_bytes)
    : parent_(parent),
      chunk_(lease_chunk_bytes > 0 ? lease_chunk_bytes
                                   : kDefaultLeaseChunkBytes) {}

GovernorShard::~GovernorShard() { Drain(); }

Status GovernorShard::Check() {
  if (!trip_.ok()) return trip_;
  ++trips_.checks;
  Status shared = parent_->SharedTrip();
  if (!shared.ok()) {
    trip_ = std::move(shared);  // tripped elsewhere; no local trip counter
    return trip_;
  }
  const CancelToken* cancel = parent_->cancel_token();
  if (cancel != nullptr && cancel->Cancelled()) {
    ++trips_.cancel_trips;
    INCOGNITO_COUNT("governor.cancel_trips");
    trip_ = parent_->LatchSharedTrip(Status::Cancelled("cancelled by caller"));
    return trip_;
  }
  if (parent_->deadline().Expired()) {
    ++trips_.deadline_trips;
    INCOGNITO_COUNT("governor.deadline_trips");
    trip_ =
        parent_->LatchSharedTrip(Status::DeadlineExceeded("deadline expired"));
    return trip_;
  }
  return Status::OK();
}

Status GovernorShard::ChargeMemory(int64_t bytes) {
  if (INCOGNITO_FAULT_FIRED("governor.charge")) {
    // Behaves exactly like a refused lease, latch included: the local and
    // shared trips are set so sibling workers stop at their next
    // checkpoint and the post-drain caller observes the failure.
    if (trip_.ok()) {
      ++trips_.memory_trips;
      INCOGNITO_COUNT("governor.memory_trips");
    }
    trip_ = parent_->LatchSharedTrip(Status::ResourceExhausted(
        "injected allocation failure (governor.charge)"));
    return trip_;
  }
  if (!trip_.ok()) return trip_;
  if (used_ + bytes > leased_) {
    int64_t need = used_ + bytes - leased_;
    // Round the lease up to whole chunks; on refusal retry at exact size,
    // so a global budget smaller than one chunk still admits what fits.
    int64_t grab = (need + chunk_ - 1) / chunk_ * chunk_;
    if (!parent_->TryLeaseMemory(grab)) {
      if (grab == need || !parent_->TryLeaseMemory(need)) {
        ++trips_.memory_trips;
        INCOGNITO_COUNT("governor.memory_trips");
        trip_ = parent_->LatchSharedTrip(Status::ResourceExhausted(
            StringPrintf("memory budget exceeded in worker shard: %lld "
                         "leased + %lld requested over %lld limit",
                         static_cast<long long>(leased_),
                         static_cast<long long>(need),
                         static_cast<long long>(parent_->memory().limit()))));
        return trip_;
      }
      grab = need;
    }
    leased_ += grab;
    if (leased_ > high_water_) high_water_ = leased_;
  }
  used_ += bytes;
  return Status::OK();
}

void GovernorShard::ReleaseMemory(int64_t bytes) { used_ -= bytes; }

void GovernorShard::Drain() {
  if (drained_) return;
  drained_ = true;
  parent_->ReturnLeasedMemory(leased_);
  leased_ = 0;
  used_ = 0;
  parent_->AbsorbShardTrips(trips_);
}

}  // namespace incognito
