#include "robust/safe_io.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#ifdef _WIN32
#include <process.h>
#else
#include <unistd.h>
#endif

#include "common/strings.h"
#include "robust/fault_injector.h"

namespace incognito {

namespace {

std::string TempPathFor(const std::string& path) {
#ifdef _WIN32
  int pid = _getpid();
#else
  int pid = static_cast<int>(getpid());
#endif
  return StringPrintf("%s.tmp.%d", path.c_str(), pid);
}

}  // namespace

Result<std::string> ReadFileToString(const std::string& path,
                                     const std::string& fault_site_prefix) {
  INCOGNITO_FAULT_POINT(
      fault_site_prefix + ".open",
      Status::IOError("injected open failure reading '" + path + "'"));
  std::ifstream file(path, std::ios::binary);
  if (!file) return Status::IOError("cannot open '" + path + "'");
  std::ostringstream buf;
  buf << file.rdbuf();
  if (file.bad()) return Status::IOError("read from '" + path + "' failed");
  return buf.str();
}

Status WriteFileAtomic(const std::string& path, const std::string& content,
                       const std::string& fault_site_prefix) {
  INCOGNITO_FAULT_POINT(
      fault_site_prefix + ".open",
      Status::IOError("injected open failure writing '" + path + "'"));
  const std::string tmp = TempPathFor(path);
  {
    std::ofstream file(tmp, std::ios::binary | std::ios::trunc);
    if (!file) {
      return Status::IOError("cannot open '" + tmp + "' for writing");
    }
    bool injected_io = false;
#ifdef INCOGNITO_FAULTS
    injected_io = FaultInjector::Global().Hit(fault_site_prefix + ".io");
#endif
    if (!injected_io) {
      file.write(content.data(),
                 static_cast<std::streamsize>(content.size()));
      file.flush();
    }
    if (injected_io || !file) {
      file.close();
      std::remove(tmp.c_str());
      return Status::IOError(
          injected_io
              ? "injected write failure for '" + path + "'"
              : "write to '" + tmp + "' failed");
    }
  }
  bool injected_rename = false;
#ifdef INCOGNITO_FAULTS
  injected_rename = FaultInjector::Global().Hit(fault_site_prefix +
                                                ".rename");
#endif
  if (injected_rename || std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::IOError(
        injected_rename
            ? "injected rename failure for '" + path + "'"
            : "cannot rename '" + tmp + "' to '" + path + "'");
  }
  return Status::OK();
}

}  // namespace incognito
