#ifndef INCOGNITO_ROBUST_FAULT_INJECTOR_H_
#define INCOGNITO_ROBUST_FAULT_INJECTOR_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"

namespace incognito {

/// Deterministic fault injection for testing failure paths. Library I/O
/// and allocation sites are annotated with INCOGNITO_FAULT_POINT(site,
/// status); when a configured injection fires at a site, the enclosing
/// function returns `status` exactly as if the real operation had failed.
///
/// Two modes, combinable:
///   - Scripted: "fail the Nth hit of site X" (ScriptFailNthHit); each
///     script entry fires once and is then consumed, so a retry succeeds.
///   - Random: every hit fails with probability p, driven by the seeded
///     SplitMix64 PRNG from common/random.h, so a failing sequence is
///     reproducible from the printed seed.
///
/// The injector object is always compiled (tests can configure it
/// unconditionally), but the fault *points* compile to nothing unless the
/// build defines INCOGNITO_FAULTS (CMake option of the same name), the
/// same pattern INCOGNITO_OBS_DISABLED uses for the obs macros — a
/// production build carries zero injection cost.
class FaultInjector {
 public:
  /// True when this build wired the fault points into the library.
  static constexpr bool kCompiledIn =
#ifdef INCOGNITO_FAULTS
      true;
#else
      false;
#endif

  /// The injector the INCOGNITO_FAULT_POINT macro consults.
  static FaultInjector& Global();

  /// The catalog of every fault site wired into the library, for tests
  /// that iterate all failure paths (docs/ROBUSTNESS.md documents each).
  static const std::vector<std::string>& KnownSites();

  /// Clears all scripts, random mode, and hit counters.
  void Reset();

  /// Arms the random mode: every hit fails with probability `probability`.
  void EnableRandom(uint64_t seed, double probability);

  /// Arms a one-shot script: the `nth` hit (1-based) of `site` fails.
  void ScriptFailNthHit(const std::string& site, int64_t nth);

  /// Arms a kill script: the `nth` hit (1-based) of `site` raises SIGKILL
  /// — the process dies mid-operation with no cleanup, exactly like a
  /// crash. The crash-recovery suite forks a child, arms this, and then
  /// proves `--resume` reconstructs a bit-identical run in the parent.
  void ScriptKillNthHit(const std::string& site, int64_t nth);

  /// Parses and arms a spec — "SITE:N" (fail the Nth hit of SITE),
  /// "kill:SITE:N" (SIGKILL the process at the Nth hit of SITE), or
  /// "rand:SEED:PROB". Rejects unknown sites and malformed specs.
  Status Configure(const std::string& spec);

  /// Records a hit of `site`; returns true when the configured injection
  /// says this hit should fail. Called by INCOGNITO_FAULT_POINT.
  bool Hit(const std::string& site);

  /// Total hits recorded at `site` since the last Reset().
  int64_t HitCount(const std::string& site) const;

  /// Faults fired since the last Reset().
  int64_t FaultsFired() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, int64_t> hits_;
  std::map<std::string, int64_t> scripted_;  // site -> nth hit to fail
  std::map<std::string, int64_t> kill_scripted_;  // site -> nth hit to SIGKILL
  bool random_armed_ = false;
  uint64_t rng_state_ = 0;
  double probability_ = 0;
  int64_t fired_ = 0;
};

}  // namespace incognito

/// Annotates a failure-injection site: when the global injector fires for
/// `site`, the enclosing function returns `status_expr` (any expression
/// convertible to the function's return type — a Status for Status-
/// returning functions, which also implicitly converts to Result<T> and
/// PartialResult<T>). Compiled out entirely unless INCOGNITO_FAULTS is
/// defined.
#ifdef INCOGNITO_FAULTS
#define INCOGNITO_FAULT_POINT(site, status_expr)                \
  do {                                                          \
    if (::incognito::FaultInjector::Global().Hit(site)) {       \
      return (status_expr);                                     \
    }                                                           \
  } while (0)
#else
// sizeof keeps `site` formally used (no -Wunused warnings at call sites)
// without evaluating it.
#define INCOGNITO_FAULT_POINT(site, status_expr) \
  static_cast<void>(sizeof((void)(site), 0))
#endif

/// Boolean form for sites whose enclosing function cannot return a Status
/// (the rollup/cube compute paths, which return frequency sets by value):
/// evaluates to true when the injector fires, and the call site routes the
/// failure through ExecutionGovernor::LatchInjectedFailure so the search
/// unwinds exactly like a refused memory charge. Compiles to a constant
/// false unless INCOGNITO_FAULTS is defined.
#ifdef INCOGNITO_FAULTS
#define INCOGNITO_FAULT_FIRED(site) \
  (::incognito::FaultInjector::Global().Hit(site))
#else
#define INCOGNITO_FAULT_FIRED(site) \
  (static_cast<void>(sizeof((void)(site), 0)), false)
#endif

#endif  // INCOGNITO_ROBUST_FAULT_INJECTOR_H_
