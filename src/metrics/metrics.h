#ifndef INCOGNITO_METRICS_METRICS_H_
#define INCOGNITO_METRICS_METRICS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/checker.h"
#include "core/quasi_identifier.h"
#include "lattice/node.h"
#include "relation/table.h"

namespace incognito {

/// Information-loss metrics for an anonymization (the cost metrics
/// discussed in the paper's related work [3, 11, 17]; used by the
/// model-comparison bench and the minimality examples).
struct QualityReport {
  /// Height of the generalization (sum of the distance vector); the
  /// paper's §2.1 minimality criterion. Only meaningful for full-domain
  /// generalizations (-1 otherwise).
  int32_t height = -1;

  /// Discernibility metric (Bayardo-Agrawal): Σ |G|² over released
  /// equivalence classes, plus |T|·(suppressed count) for suppressed
  /// tuples. Lower is better; |T| tuples in one class score |T|².
  double discernibility = 0;

  /// Average equivalence-class size of the released tuples.
  double avg_class_size = 0;

  /// Number of equivalence classes released.
  int64_t num_classes = 0;

  /// Samarati/Sweeney precision Prec: 1 − mean over cells of
  /// (generalization level / hierarchy height). 1 = untouched data,
  /// 0 = fully generalized.
  double precision = 0;

  /// Iyengar's loss metric LM: mean over cells of
  /// (leaves under the generalized value − 1) / (|domain| − 1).
  /// 0 = untouched, 1 = fully generalized.
  double loss_metric = 0;

  /// Tuples suppressed.
  int64_t suppressed = 0;

  std::string ToString() const;
};

/// Evaluates the quality of the full-domain generalization `node` of
/// `table` under `config` (suppression counted per the configured k).
Result<QualityReport> EvaluateFullDomain(const Table& table,
                                         const QuasiIdentifier& qid,
                                         const SubsetNode& node,
                                         const AnonymizationConfig& config);

/// Evaluates a released view produced by ANY recoding model (full-domain,
/// subtree, Mondrian, cell suppression, ...): groups the view on the named
/// quasi-identifier columns and reports class-size metrics. `original_rows`
/// is the size of the source table (to count suppressed tuples and weigh
/// them in the discernibility score). Hierarchy-dependent metrics
/// (precision, loss) are not computable from a view alone and are left 0.
Result<QualityReport> EvaluateView(const Table& view,
                                   const std::vector<std::string>& qid_columns,
                                   int64_t original_rows);

/// Returns the equivalence-class sizes of `view` grouped on the named
/// columns, descending.
Result<std::vector<int64_t>> ClassSizes(
    const Table& view, const std::vector<std::string>& qid_columns);

}  // namespace incognito

#endif  // INCOGNITO_METRICS_METRICS_H_
