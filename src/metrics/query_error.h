#ifndef INCOGNITO_METRICS_QUERY_ERROR_H_
#define INCOGNITO_METRICS_QUERY_ERROR_H_

#include <cstdint>
#include <string>

#include "common/status.h"
#include "core/checker.h"
#include "core/quasi_identifier.h"
#include "lattice/node.h"
#include "relation/table.h"

namespace incognito {

/// Workload-based utility evaluation: how well does a full-domain
/// generalized release answer COUNT queries compared with the original
/// microdata? (The standard follow-up-work utility score, complementing
/// the structural metrics in metrics.h.)
///
/// A query selects a random contiguous range of each queried attribute's
/// base domain (in dictionary-sorted order); its true answer is the count
/// of matching original tuples. Against the release, each generalized
/// equivalence class contributes fractionally under the uniform-spread
/// assumption: a class whose cell covers base-value sets B_d contributes
/// count · Π_d |B_d ∩ query_d| / |B_d|. Reported is the relative error
/// |estimate − truth| / max(truth, 1) aggregated over the workload.
struct QueryWorkloadReport {
  double mean_relative_error = 0;
  double median_relative_error = 0;
  double max_relative_error = 0;
  size_t num_queries = 0;

  std::string ToString() const;
};

/// Options for the random COUNT-range-query workload.
struct QueryWorkloadOptions {
  size_t num_queries = 200;
  /// Attributes per query (capped at qid.size()).
  size_t attributes_per_query = 2;
  /// Fraction of each queried attribute's base domain covered by the
  /// query range (clamped to at least one value).
  double selectivity = 0.25;
  /// Workload PRNG seed (the workload is deterministic given options).
  uint64_t seed = 7;
};

/// Evaluates the full-domain generalization `node` of `table` (suppression
/// per `config`) against a random COUNT-query workload. Suppressed tuples
/// are absent from the release, so they count toward the truth but not
/// the estimate — suppression shows up as irreducible error, as it
/// should.
Result<QueryWorkloadReport> EvaluateQueryWorkload(
    const Table& table, const QuasiIdentifier& qid, const SubsetNode& node,
    const AnonymizationConfig& config, const QueryWorkloadOptions& options = {});

}  // namespace incognito

#endif  // INCOGNITO_METRICS_QUERY_ERROR_H_
