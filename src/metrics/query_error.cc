#include "metrics/query_error.h"

#include <algorithm>
#include <cassert>
#include <vector>

#include "common/random.h"
#include "common/strings.h"
#include "freq/frequency_set.h"

namespace incognito {

std::string QueryWorkloadReport::ToString() const {
  return StringPrintf(
      "queries=%zu mean_rel_err=%.4f median_rel_err=%.4f max_rel_err=%.4f",
      num_queries, mean_relative_error, median_relative_error,
      max_relative_error);
}

namespace {

/// One query: per attribute, either no constraint (empty membership) or a
/// membership bitmap over base codes.
struct Query {
  // per attribute: empty = unconstrained; else base-code membership.
  std::vector<std::vector<bool>> member;
};

}  // namespace

Result<QueryWorkloadReport> EvaluateQueryWorkload(
    const Table& table, const QuasiIdentifier& qid, const SubsetNode& node,
    const AnonymizationConfig& config,
    const QueryWorkloadOptions& options) {
  const size_t n = qid.size();
  if (node.size() != n) {
    return Status::InvalidArgument(
        "node must generalize the full quasi-identifier");
  }
  if (options.num_queries == 0) {
    return Status::InvalidArgument("num_queries must be positive");
  }

  // Base-value coverage of each generalized value, per attribute:
  // covered[i][general_code] = base codes under it (sorted ascending).
  std::vector<std::vector<std::vector<int32_t>>> covered(n);
  for (size_t i = 0; i < n; ++i) {
    const ValueHierarchy& h = qid.hierarchy(i);
    size_t level = static_cast<size_t>(node.levels[i]);
    covered[i].resize(h.DomainSize(level));
    const std::vector<int32_t>& map = h.BaseToLevelMap(level);
    for (size_t base = 0; base < map.size(); ++base) {
      covered[i][static_cast<size_t>(map[base])].push_back(
          static_cast<int32_t>(base));
    }
  }

  // The release's equivalence classes (with suppression applied).
  FrequencySet freq = FrequencySet::Compute(table, qid, node);
  std::vector<std::vector<int32_t>> class_codes;
  std::vector<int64_t> class_counts;
  freq.ForEachGroup([&](const int32_t* codes, int64_t count) {
    if (count < config.k) return;  // suppressed
    class_codes.emplace_back(codes, codes + n);
    class_counts.push_back(count);
  });

  // Domain rank order per attribute (queries are ranges in value order).
  std::vector<std::vector<int32_t>> sorted_codes(n);
  for (size_t i = 0; i < n; ++i) {
    sorted_codes[i] = table.dictionary(qid.column(i)).SortedCodes();
  }

  // Generate the workload.
  Rng rng(options.seed);
  const size_t attrs_per_query = std::min(options.attributes_per_query, n);
  std::vector<Query> workload(options.num_queries);
  for (Query& query : workload) {
    query.member.resize(n);
    // Choose attributes without replacement.
    std::vector<size_t> attrs(n);
    for (size_t i = 0; i < n; ++i) attrs[i] = i;
    for (size_t i = 0; i < attrs_per_query; ++i) {
      size_t j = i + rng.Uniform(n - i);
      std::swap(attrs[i], attrs[j]);
    }
    for (size_t a = 0; a < attrs_per_query; ++a) {
      size_t i = attrs[a];
      size_t domain = sorted_codes[i].size();
      size_t width = std::max<size_t>(
          1, static_cast<size_t>(options.selectivity *
                                 static_cast<double>(domain)));
      width = std::min(width, domain);
      size_t start = rng.Uniform(domain - width + 1);
      query.member[i].assign(domain, false);
      for (size_t r = start; r < start + width; ++r) {
        query.member[i][static_cast<size_t>(sorted_codes[i][r])] = true;
      }
    }
  }

  // True answers: one scan of the base codes per query batch.
  std::vector<const int32_t*> cols(n);
  for (size_t i = 0; i < n; ++i) {
    cols[i] = table.ColumnCodes(qid.column(i)).data();
  }
  std::vector<int64_t> truth(workload.size(), 0);
  for (size_t r = 0; r < table.num_rows(); ++r) {
    for (size_t q = 0; q < workload.size(); ++q) {
      bool match = true;
      for (size_t i = 0; i < n && match; ++i) {
        const std::vector<bool>& member = workload[q].member[i];
        if (!member.empty() && !member[static_cast<size_t>(cols[i][r])]) {
          match = false;
        }
      }
      if (match) ++truth[q];
    }
  }

  // Estimates from the release under uniform spread.
  std::vector<double> errors;
  errors.reserve(workload.size());
  double sum = 0, max_err = 0;
  for (size_t q = 0; q < workload.size(); ++q) {
    double estimate = 0;
    for (size_t g = 0; g < class_codes.size(); ++g) {
      double fraction = 1;
      for (size_t i = 0; i < n && fraction > 0; ++i) {
        const std::vector<bool>& member = workload[q].member[i];
        if (member.empty()) continue;
        const std::vector<int32_t>& bases =
            covered[i][static_cast<size_t>(class_codes[g][i])];
        size_t hit = 0;
        for (int32_t b : bases) {
          if (member[static_cast<size_t>(b)]) ++hit;
        }
        fraction *= static_cast<double>(hit) /
                    static_cast<double>(bases.size());
      }
      estimate += fraction * static_cast<double>(class_counts[g]);
    }
    double err = std::abs(estimate - static_cast<double>(truth[q])) /
                 std::max<double>(1.0, static_cast<double>(truth[q]));
    errors.push_back(err);
    sum += err;
    max_err = std::max(max_err, err);
  }
  std::sort(errors.begin(), errors.end());

  QueryWorkloadReport report;
  report.num_queries = workload.size();
  report.mean_relative_error = sum / static_cast<double>(errors.size());
  report.median_relative_error = errors[errors.size() / 2];
  report.max_relative_error = max_err;
  return report;
}

}  // namespace incognito
