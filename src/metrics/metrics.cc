#include "metrics/metrics.h"

#include <algorithm>
#include <unordered_map>

#include "common/strings.h"
#include "freq/frequency_set.h"

namespace incognito {

std::string QualityReport::ToString() const {
  return StringPrintf(
      "height=%d classes=%lld avg_class=%.2f discern=%.3g prec=%.4f "
      "lm=%.4f suppressed=%lld",
      height, static_cast<long long>(num_classes), avg_class_size,
      discernibility, precision, loss_metric,
      static_cast<long long>(suppressed));
}

Result<QualityReport> EvaluateFullDomain(const Table& table,
                                         const QuasiIdentifier& qid,
                                         const SubsetNode& node,
                                         const AnonymizationConfig& config) {
  if (node.size() != qid.size()) {
    return Status::InvalidArgument(
        "node must generalize the full quasi-identifier");
  }
  QualityReport report;
  report.height = node.Height();

  FrequencySet freq = FrequencySet::Compute(table, qid, node);
  const size_t n = qid.size();
  const double total = static_cast<double>(table.num_rows());

  // Leaves under each generalized value, per attribute, for the loss
  // metric (precomputed per level-domain value).
  std::vector<std::vector<int64_t>> leaves_under(n);
  for (size_t i = 0; i < n; ++i) {
    const ValueHierarchy& h = qid.hierarchy(i);
    size_t level = static_cast<size_t>(node.levels[i]);
    leaves_under[i].assign(h.DomainSize(level), 0);
    const std::vector<int32_t>& map = h.BaseToLevelMap(level);
    for (int32_t target : map) ++leaves_under[i][static_cast<size_t>(target)];
  }

  int64_t released = 0;
  double weighted_lm = 0;  // Σ over released cells of per-cell loss
  freq.ForEachGroup([&](const int32_t* codes, int64_t count) {
    if (count < config.k) {
      report.suppressed += count;
      return;
    }
    ++report.num_classes;
    released += count;
    report.discernibility += static_cast<double>(count) * count;
    for (size_t i = 0; i < n; ++i) {
      double domain = static_cast<double>(qid.hierarchy(i).DomainSize(0));
      if (domain > 1) {
        double leaves = static_cast<double>(
            leaves_under[i][static_cast<size_t>(codes[i])]);
        weighted_lm += count * (leaves - 1) / (domain - 1);
      }
    }
  });
  report.discernibility += total * static_cast<double>(report.suppressed);
  report.avg_class_size =
      report.num_classes > 0
          ? static_cast<double>(released) / report.num_classes
          : 0;

  // Precision: identical for every tuple under full-domain recoding.
  double level_ratio = 0;
  for (size_t i = 0; i < n; ++i) {
    size_t height = qid.hierarchy(i).height();
    if (height > 0) {
      level_ratio +=
          static_cast<double>(node.levels[i]) / static_cast<double>(height);
    }
  }
  report.precision = 1.0 - level_ratio / static_cast<double>(n);
  report.loss_metric =
      released > 0 ? weighted_lm / (static_cast<double>(released) * n) : 0;
  return report;
}

namespace {

Result<std::unordered_map<std::string, int64_t>> GroupView(
    const Table& view, const std::vector<std::string>& qid_columns) {
  std::vector<size_t> cols;
  cols.reserve(qid_columns.size());
  for (const std::string& name : qid_columns) {
    Result<size_t> idx = view.schema().ColumnIndex(name);
    if (!idx.ok()) return idx.status();
    cols.push_back(idx.value());
  }
  std::unordered_map<std::string, int64_t> groups;
  for (size_t r = 0; r < view.num_rows(); ++r) {
    std::string key;
    for (size_t c : cols) {
      key += view.GetValue(r, c).ToString();
      key += '\x1f';
    }
    ++groups[key];
  }
  return groups;
}

}  // namespace

Result<QualityReport> EvaluateView(const Table& view,
                                   const std::vector<std::string>& qid_columns,
                                   int64_t original_rows) {
  Result<std::unordered_map<std::string, int64_t>> groups =
      GroupView(view, qid_columns);
  if (!groups.ok()) return groups.status();

  QualityReport report;
  report.suppressed = original_rows - static_cast<int64_t>(view.num_rows());
  int64_t released = 0;
  for (const auto& [key, count] : groups.value()) {
    (void)key;
    ++report.num_classes;
    released += count;
    report.discernibility += static_cast<double>(count) * count;
  }
  report.discernibility +=
      static_cast<double>(original_rows) * report.suppressed;
  report.avg_class_size =
      report.num_classes > 0
          ? static_cast<double>(released) / report.num_classes
          : 0;
  return report;
}

Result<std::vector<int64_t>> ClassSizes(
    const Table& view, const std::vector<std::string>& qid_columns) {
  Result<std::unordered_map<std::string, int64_t>> groups =
      GroupView(view, qid_columns);
  if (!groups.ok()) return groups.status();
  std::vector<int64_t> sizes;
  sizes.reserve(groups.value().size());
  for (const auto& [key, count] : groups.value()) {
    (void)key;
    sizes.push_back(count);
  }
  std::sort(sizes.rbegin(), sizes.rend());
  return sizes;
}

}  // namespace incognito
