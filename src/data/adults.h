#ifndef INCOGNITO_DATA_ADULTS_H_
#define INCOGNITO_DATA_ADULTS_H_

#include <cstdint>

#include "common/status.h"
#include "data/dataset.h"

namespace incognito {

/// Options for the synthetic Adults (US Census) generator.
struct AdultsOptions {
  /// Row count; the paper's cleaned UCI Adults table has 45,222 records.
  size_t num_rows = 45222;
  /// PRNG seed; the dataset is a deterministic function of (num_rows, seed).
  uint64_t seed = 20050614;
};

/// Generates a synthetic stand-in for the UCI Adults database configured
/// exactly as in paper Fig. 9 (left): nine quasi-identifier attributes with
/// the published domain sizes and generalization hierarchies —
///
///   1. Age            74 values   5-/10-/20-year ranges + top  (height 4)
///   2. Gender          2 values   suppression                  (height 1)
///   3. Race            5 values   suppression                  (height 1)
///   4. Marital status  7 values   taxonomy tree                (height 2)
///   5. Education      16 values   taxonomy tree                (height 3)
///   6. Native country 41 values   taxonomy tree                (height 2)
///   7. Work class      7 values   taxonomy tree                (height 2)
///   8. Occupation     14 values   taxonomy tree                (height 2)
///   9. Salary class    2 values   suppression                  (height 1)
///
/// Value distributions are skewed to resemble the census data (dominant
/// native country, majority race, correlated education/salary), so the
/// k-anonymity structure — which generalizations pass at small k — behaves
/// like real microdata. See DESIGN.md §4 for the substitution rationale.
Result<SyntheticDataset> MakeAdultsDataset(const AdultsOptions& options = {});

}  // namespace incognito

#endif  // INCOGNITO_DATA_ADULTS_H_
