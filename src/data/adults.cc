#include "data/adults.h"

#include <array>
#include <cassert>
#include <map>
#include <string>
#include <vector>

#include "common/random.h"
#include "hierarchy/builders.h"

namespace incognito {
namespace {

// ---------------------------------------------------------------------------
// Value pools (the UCI Adults categorical domains, matching the distinct
// counts in paper Fig. 9) and their taxonomy-tree groupings.
// ---------------------------------------------------------------------------

struct Categorical {
  const char* value;
  const char* level1;  // taxonomy group (nullptr for suppression attrs)
  double weight;       // sampling weight (relative)
};

constexpr std::array kGender = {
    Categorical{"Male", nullptr, 0.67},
    Categorical{"Female", nullptr, 0.33},
};

constexpr std::array kRace = {
    Categorical{"White", nullptr, 0.855},
    Categorical{"Black", nullptr, 0.093},
    Categorical{"Asian-Pac-Islander", nullptr, 0.031},
    Categorical{"Amer-Indian-Eskimo", nullptr, 0.010},
    Categorical{"Other", nullptr, 0.011},
};

constexpr std::array kMarital = {
    Categorical{"Married-civ-spouse", "Married", 0.46},
    Categorical{"Never-married", "Never-married", 0.33},
    Categorical{"Divorced", "Was-married", 0.14},
    Categorical{"Separated", "Was-married", 0.031},
    Categorical{"Widowed", "Was-married", 0.030},
    Categorical{"Married-spouse-absent", "Married", 0.013},
    Categorical{"Married-AF-spouse", "Married", 0.001},
};

constexpr std::array kEducation = {
    Categorical{"HS-grad", "Secondary", 0.323},
    Categorical{"Some-college", "Some-college", 0.223},
    Categorical{"Bachelors", "Higher", 0.164},
    Categorical{"Masters", "Higher", 0.054},
    Categorical{"Assoc-voc", "Assoc", 0.042},
    Categorical{"11th", "Secondary", 0.036},
    Categorical{"Assoc-acdm", "Assoc", 0.033},
    Categorical{"10th", "Secondary", 0.028},
    Categorical{"7th-8th", "Primary", 0.019},
    Categorical{"Prof-school", "Higher", 0.018},
    Categorical{"9th", "Secondary", 0.015},
    Categorical{"12th", "Secondary", 0.013},
    Categorical{"Doctorate", "Higher", 0.012},
    Categorical{"5th-6th", "Primary", 0.010},
    Categorical{"1st-4th", "Primary", 0.005},
    Categorical{"Preschool", "Primary", 0.002},
};

constexpr std::array kCountry = {
    Categorical{"United-States", "North-America", 0.897},
    Categorical{"Mexico", "Latin-America", 0.020},
    Categorical{"Philippines", "Asia", 0.0061},
    Categorical{"Germany", "Europe", 0.0042},
    Categorical{"Puerto-Rico", "Latin-America", 0.0038},
    Categorical{"Canada", "North-America", 0.0037},
    Categorical{"India", "Asia", 0.0031},
    Categorical{"El-Salvador", "Latin-America", 0.0031},
    Categorical{"Cuba", "Latin-America", 0.0029},
    Categorical{"England", "Europe", 0.0026},
    Categorical{"Jamaica", "Latin-America", 0.0025},
    Categorical{"South", "Asia", 0.0023},
    Categorical{"China", "Asia", 0.0023},
    Categorical{"Italy", "Europe", 0.0021},
    Categorical{"Dominican-Republic", "Latin-America", 0.0021},
    Categorical{"Vietnam", "Asia", 0.0020},
    Categorical{"Guatemala", "Latin-America", 0.0019},
    Categorical{"Japan", "Asia", 0.0018},
    Categorical{"Poland", "Europe", 0.0017},
    Categorical{"Columbia", "Latin-America", 0.0017},
    Categorical{"Taiwan", "Asia", 0.0013},
    Categorical{"Haiti", "Latin-America", 0.0013},
    Categorical{"Iran", "Asia", 0.0013},
    Categorical{"Portugal", "Europe", 0.0011},
    Categorical{"Nicaragua", "Latin-America", 0.0010},
    Categorical{"Peru", "Latin-America", 0.0009},
    Categorical{"Greece", "Europe", 0.0009},
    Categorical{"France", "Europe", 0.0008},
    Categorical{"Ecuador", "Latin-America", 0.0008},
    Categorical{"Ireland", "Europe", 0.0008},
    Categorical{"Hong", "Asia", 0.0006},
    Categorical{"Cambodia", "Asia", 0.0006},
    Categorical{"Trinadad&Tobago", "Latin-America", 0.0006},
    Categorical{"Thailand", "Asia", 0.0005},
    Categorical{"Laos", "Asia", 0.0005},
    Categorical{"Yugoslavia", "Europe", 0.0005},
    Categorical{"Outlying-US(Guam-USVI-etc)", "Latin-America", 0.0004},
    Categorical{"Hungary", "Europe", 0.0004},
    Categorical{"Honduras", "Latin-America", 0.0004},
    Categorical{"Scotland", "Europe", 0.0004},
    Categorical{"Holand-Netherlands", "Europe", 0.0001},
};

constexpr std::array kWorkClass = {
    Categorical{"Private", "Private-sector", 0.737},
    Categorical{"Self-emp-not-inc", "Self-employed", 0.083},
    Categorical{"Local-gov", "Government", 0.068},
    Categorical{"State-gov", "Government", 0.043},
    Categorical{"Self-emp-inc", "Self-employed", 0.036},
    Categorical{"Federal-gov", "Government", 0.031},
    Categorical{"Without-pay", "Unpaid", 0.002},
};

constexpr std::array kOccupation = {
    Categorical{"Prof-specialty", "White-collar", 0.134},
    Categorical{"Craft-repair", "Blue-collar", 0.134},
    Categorical{"Exec-managerial", "White-collar", 0.132},
    Categorical{"Adm-clerical", "White-collar", 0.124},
    Categorical{"Sales", "White-collar", 0.119},
    Categorical{"Other-service", "Service", 0.105},
    Categorical{"Machine-op-inspct", "Blue-collar", 0.066},
    Categorical{"Transport-moving", "Blue-collar", 0.052},
    Categorical{"Handlers-cleaners", "Blue-collar", 0.045},
    Categorical{"Farming-fishing", "Blue-collar", 0.033},
    Categorical{"Tech-support", "White-collar", 0.030},
    Categorical{"Protective-serv", "Service", 0.021},
    Categorical{"Priv-house-serv", "Service", 0.005},
    Categorical{"Armed-Forces", "Military", 0.0003},
};

constexpr std::array kSalary = {
    Categorical{"<=50K", nullptr, 0.75},
    Categorical{">50K", nullptr, 0.25},
};

constexpr int64_t kMinAge = 17;
constexpr size_t kNumAges = 74;  // ages 17..90, as in UCI Adults

/// Cumulative distribution over a categorical pool.
template <size_t N>
std::vector<double> Cdf(const std::array<Categorical, N>& pool) {
  std::vector<double> cdf(N);
  double total = 0;
  for (size_t i = 0; i < N; ++i) {
    total += pool[i].weight;
    cdf[i] = total;
  }
  for (double& x : cdf) x /= total;
  return cdf;
}

size_t SampleCdf(const std::vector<double>& cdf, Rng& rng) {
  double u = rng.NextDouble();
  size_t lo = 0, hi = cdf.size() - 1;
  while (lo < hi) {
    size_t mid = (lo + hi) / 2;
    if (cdf[mid] < u) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

/// Prefills a string column's dictionary with a categorical pool (codes ==
/// pool indices) and builds its suppression or taxonomy hierarchy.
template <size_t N>
Result<ValueHierarchy> SetupCategorical(
    Table* table, const char* column, const std::array<Categorical, N>& pool) {
  size_t col = static_cast<size_t>(table->schema().FindColumn(column));
  Dictionary& dict = table->mutable_dictionary(col);
  for (const Categorical& c : pool) dict.GetOrInsert(Value(c.value));
  if (pool[0].level1 == nullptr) {
    return BuildSuppressionHierarchy(column, dict);
  }
  TaxonomyHierarchyBuilder builder{column};
  for (const Categorical& c : pool) {
    builder.AddLeaf(Value(c.value), {Value(c.level1), Value("*")});
  }
  return builder.Build(dict);
}

}  // namespace

Result<SyntheticDataset> MakeAdultsDataset(const AdultsOptions& options) {
  if (options.num_rows == 0) {
    return Status::InvalidArgument("num_rows must be positive");
  }
  Table table{Schema({{"Age", DataType::kInt64},
                      {"Gender", DataType::kString},
                      {"Race", DataType::kString},
                      {"Marital-status", DataType::kString},
                      {"Education", DataType::kString},
                      {"Native-country", DataType::kString},
                      {"Work-class", DataType::kString},
                      {"Occupation", DataType::kString},
                      {"Salary-class", DataType::kString}})};

  // Age domain: 17..90, dictionary code = age - 17.
  {
    Dictionary& dict = table.mutable_dictionary(0);
    for (size_t a = 0; a < kNumAges; ++a) {
      dict.GetOrInsert(Value(kMinAge + static_cast<int64_t>(a)));
    }
  }
  Result<ValueHierarchy> age = BuildIntervalHierarchy(
      "Age", table.dictionary(0), {5, 10, 20}, /*add_suppression_top=*/true);
  if (!age.ok()) return age.status();

  Result<ValueHierarchy> gender = SetupCategorical(&table, "Gender", kGender);
  if (!gender.ok()) return gender.status();
  Result<ValueHierarchy> race = SetupCategorical(&table, "Race", kRace);
  if (!race.ok()) return race.status();
  Result<ValueHierarchy> marital =
      SetupCategorical(&table, "Marital-status", kMarital);
  if (!marital.ok()) return marital.status();

  // Education gets a deeper taxonomy (height 3, per Fig. 9): leaf →
  // school-stage → degree/no-degree → *.
  Result<ValueHierarchy> education = [&]() -> Result<ValueHierarchy> {
    size_t col = static_cast<size_t>(table.schema().FindColumn("Education"));
    Dictionary& dict = table.mutable_dictionary(col);
    for (const Categorical& c : kEducation) dict.GetOrInsert(Value(c.value));
    const std::map<std::string, std::string> degree = {
        {"Primary", "No-degree"},   {"Secondary", "No-degree"},
        {"Some-college", "No-degree"}, {"Assoc", "Degree"},
        {"Higher", "Degree"},
    };
    TaxonomyHierarchyBuilder builder{"Education"};
    for (const Categorical& c : kEducation) {
      builder.AddLeaf(Value(c.value), {Value(c.level1),
                                       Value(degree.at(c.level1)),
                                       Value("*")});
    }
    return builder.Build(dict);
  }();
  if (!education.ok()) return education.status();

  Result<ValueHierarchy> country =
      SetupCategorical(&table, "Native-country", kCountry);
  if (!country.ok()) return country.status();
  Result<ValueHierarchy> work_class =
      SetupCategorical(&table, "Work-class", kWorkClass);
  if (!work_class.ok()) return work_class.status();
  Result<ValueHierarchy> occupation =
      SetupCategorical(&table, "Occupation", kOccupation);
  if (!occupation.ok()) return occupation.status();
  Result<ValueHierarchy> salary =
      SetupCategorical(&table, "Salary-class", kSalary);
  if (!salary.ok()) return salary.status();

  // ---- Row generation -----------------------------------------------------
  Rng rng(options.seed);
  const std::vector<double> gender_cdf = Cdf(kGender);
  const std::vector<double> race_cdf = Cdf(kRace);
  const std::vector<double> marital_cdf = Cdf(kMarital);
  const std::vector<double> education_cdf = Cdf(kEducation);
  const std::vector<double> country_cdf = Cdf(kCountry);
  const std::vector<double> work_cdf = Cdf(kWorkClass);
  const std::vector<double> occupation_cdf = Cdf(kOccupation);

  // Education rank (0 = lowest schooling) used for the salary correlation.
  const std::array<int, kEducation.size()> kEduRank = {
      8, 10, 12, 14, 9, 5, 11, 4, 2, 15, 3, 6, 16, 1, 0, 0};

  std::vector<int32_t> codes(9);
  for (size_t r = 0; r < options.num_rows; ++r) {
    // Age: triangular distribution peaking in the late 30s.
    double u = (rng.NextDouble() + rng.NextDouble()) / 2.0;
    int32_t age_code =
        static_cast<int32_t>(u * static_cast<double>(kNumAges - 1) + 0.5);
    size_t gender_code = SampleCdf(gender_cdf, rng);
    size_t race_code = SampleCdf(race_cdf, rng);
    size_t marital_code = SampleCdf(marital_cdf, rng);
    size_t education_code = SampleCdf(education_cdf, rng);
    size_t country_code = SampleCdf(country_cdf, rng);
    size_t work_code = SampleCdf(work_cdf, rng);
    size_t occupation_code = SampleCdf(occupation_cdf, rng);

    // Salary correlates with schooling and mid-career age.
    double p_high = 0.04 + 0.022 * kEduRank[education_code];
    int64_t age_years = kMinAge + age_code;
    if (age_years >= 35 && age_years <= 55) p_high += 0.12;
    if (gender_code == 0) p_high += 0.05;  // matches the census skew
    size_t salary_code = rng.Bernoulli(p_high) ? 1 : 0;

    codes[0] = age_code;
    codes[1] = static_cast<int32_t>(gender_code);
    codes[2] = static_cast<int32_t>(race_code);
    codes[3] = static_cast<int32_t>(marital_code);
    codes[4] = static_cast<int32_t>(education_code);
    codes[5] = static_cast<int32_t>(country_code);
    codes[6] = static_cast<int32_t>(work_code);
    codes[7] = static_cast<int32_t>(occupation_code);
    codes[8] = static_cast<int32_t>(salary_code);
    table.AppendRowCodes(codes);
  }

  Result<QuasiIdentifier> qid = QuasiIdentifier::Create(
      table, {{"Age", std::move(age).value()},
              {"Gender", std::move(gender).value()},
              {"Race", std::move(race).value()},
              {"Marital-status", std::move(marital).value()},
              {"Education", std::move(education).value()},
              {"Native-country", std::move(country).value()},
              {"Work-class", std::move(work_class).value()},
              {"Occupation", std::move(occupation).value()},
              {"Salary-class", std::move(salary).value()}});
  if (!qid.ok()) return qid.status();

  SyntheticDataset dataset;
  dataset.table = std::move(table);
  dataset.qid = std::move(qid).value();
  return dataset;
}

}  // namespace incognito
