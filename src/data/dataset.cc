#include "data/dataset.h"

#include <unordered_set>

namespace incognito {

std::vector<AttributeStats> DescribeDataset(const SyntheticDataset& dataset) {
  std::vector<AttributeStats> out;
  out.reserve(dataset.qid.size());
  for (size_t i = 0; i < dataset.qid.size(); ++i) {
    AttributeStats stats;
    stats.name = dataset.qid.name(i);
    stats.domain_size = dataset.qid.hierarchy(i).DomainSize(0);
    stats.hierarchy_height = dataset.qid.hierarchy(i).height();
    std::unordered_set<int32_t> seen;
    for (int32_t code : dataset.table.ColumnCodes(dataset.qid.column(i))) {
      seen.insert(code);
    }
    stats.realized_distinct = seen.size();
    out.push_back(std::move(stats));
  }
  return out;
}

}  // namespace incognito
