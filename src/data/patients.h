#ifndef INCOGNITO_DATA_PATIENTS_H_
#define INCOGNITO_DATA_PATIENTS_H_

#include "common/status.h"
#include "core/quasi_identifier.h"
#include "relation/table.h"

namespace incognito {

/// The paper's running example: the hospital Patients table of Figure 1
/// (columns Birthdate, Sex, Zipcode, Disease) together with the
/// generalization hierarchies of Figure 2 bound as the quasi-identifier
/// 〈Birthdate, Sex, Zipcode〉.
struct PatientsDataset {
  Table table;
  QuasiIdentifier qid;
};

/// Builds the Patients table and its quasi-identifier. Hierarchy shapes
/// follow Figure 2: Zipcode has height 2 (5371x → 5371* → 537**),
/// Birthdate and Sex have height 1 (suppress to * / Person).
Result<PatientsDataset> MakePatientsDataset();

/// The public voter registration list of Figure 1 (Name, Birthdate, Sex,
/// Zipcode) used by the joining-attack example.
Table MakeVoterRegistrationTable();

}  // namespace incognito

#endif  // INCOGNITO_DATA_PATIENTS_H_
