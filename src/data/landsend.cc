#include "data/landsend.h"

#include <algorithm>
#include <cassert>

#include "common/random.h"
#include "common/strings.h"
#include "hierarchy/builders.h"

namespace incognito {
namespace {

constexpr size_t kNumZipcodes = 31953;
constexpr size_t kNumDates = 320;
constexpr size_t kNumStyles = 1509;
constexpr size_t kNumPrices = 346;
constexpr size_t kNumCosts = 1412;

/// Day-of-year (1-based) to "2001-MM-DD" (2001 is not a leap year).
std::string DateOfYear2001(int day_of_year) {
  static constexpr int kDays[12] = {31, 28, 31, 30, 31, 30,
                                    31, 31, 30, 31, 30, 31};
  int month = 0;
  while (day_of_year > kDays[month]) {
    day_of_year -= kDays[month];
    ++month;
  }
  return StringPrintf("2001-%02d-%02d", month + 1, day_of_year);
}

}  // namespace

Result<SyntheticDataset> MakeLandsEndDataset(const LandsEndOptions& options) {
  if (options.num_rows == 0) {
    return Status::InvalidArgument("num_rows must be positive");
  }
  Table table{Schema({{"Zipcode", DataType::kInt64},
                      {"Order-date", DataType::kString},
                      {"Gender", DataType::kString},
                      {"Style", DataType::kInt64},
                      {"Price", DataType::kInt64},
                      {"Quantity", DataType::kInt64},
                      {"Cost", DataType::kInt64},
                      {"Shipment", DataType::kString}})};

  // ---- Domains (dictionary prefill; codes == pool indices) ---------------
  // Zipcode: 31,953 distinct 5-digit codes spread over [01000, 99999].
  {
    Dictionary& dict = table.mutable_dictionary(0);
    for (size_t i = 0; i < kNumZipcodes; ++i) {
      int64_t zip = 1000 + static_cast<int64_t>(i * 99000ULL / kNumZipcodes);
      dict.GetOrInsert(Value(zip));
    }
  }
  // Order date: 320 of the 365 days of 2001.
  {
    Dictionary& dict = table.mutable_dictionary(1);
    for (size_t i = 0; i < kNumDates; ++i) {
      int day = 1 + static_cast<int>(i * 365ULL / kNumDates);
      dict.GetOrInsert(Value(DateOfYear2001(day)));
    }
  }
  {
    Dictionary& dict = table.mutable_dictionary(2);
    dict.GetOrInsert(Value("Female"));
    dict.GetOrInsert(Value("Male"));
  }
  // Style: 1509 distinct catalog style numbers.
  {
    Dictionary& dict = table.mutable_dictionary(3);
    for (size_t i = 0; i < kNumStyles; ++i) {
      dict.GetOrInsert(Value(static_cast<int64_t>(10000 + i * 6)));
    }
  }
  // Price: 346 distinct price points (cents dropped), 4-digit range.
  {
    Dictionary& dict = table.mutable_dictionary(4);
    for (size_t i = 0; i < kNumPrices; ++i) {
      dict.GetOrInsert(Value(static_cast<int64_t>(9 + i * 28)));
    }
  }
  {
    Dictionary& dict = table.mutable_dictionary(5);
    dict.GetOrInsert(Value(static_cast<int64_t>(1)));  // Quantity: always 1
  }
  // Cost: 1412 distinct cost values, 4-digit range.
  {
    Dictionary& dict = table.mutable_dictionary(6);
    for (size_t i = 0; i < kNumCosts; ++i) {
      dict.GetOrInsert(Value(static_cast<int64_t>(5 + i * 7)));
    }
  }
  {
    Dictionary& dict = table.mutable_dictionary(7);
    dict.GetOrInsert(Value("Standard"));
    dict.GetOrInsert(Value("Express"));
  }

  // ---- Hierarchies (heights per Fig. 9) -----------------------------------
  Result<ValueHierarchy> zipcode = BuildDigitRoundingHierarchy(
      "Zipcode", table.dictionary(0), /*num_digits=*/5, /*levels=*/5);
  if (!zipcode.ok()) return zipcode.status();
  Result<ValueHierarchy> date =
      BuildDateHierarchy("Order-date", table.dictionary(1));
  if (!date.ok()) return date.status();
  Result<ValueHierarchy> gender =
      BuildSuppressionHierarchy("Gender", table.dictionary(2));
  if (!gender.ok()) return gender.status();
  Result<ValueHierarchy> style =
      BuildSuppressionHierarchy("Style", table.dictionary(3));
  if (!style.ok()) return style.status();
  Result<ValueHierarchy> price = BuildDigitRoundingHierarchy(
      "Price", table.dictionary(4), /*num_digits=*/4, /*levels=*/4);
  if (!price.ok()) return price.status();
  Result<ValueHierarchy> quantity =
      BuildSuppressionHierarchy("Quantity", table.dictionary(5));
  if (!quantity.ok()) return quantity.status();
  Result<ValueHierarchy> cost = BuildDigitRoundingHierarchy(
      "Cost", table.dictionary(6), /*num_digits=*/4, /*levels=*/4);
  if (!cost.ok()) return cost.status();
  Result<ValueHierarchy> shipment =
      BuildSuppressionHierarchy("Shipment", table.dictionary(7));
  if (!shipment.ok()) return shipment.status();

  // ---- Row generation -----------------------------------------------------
  Rng rng(options.seed);
  // Orders cluster around populous zipcodes and popular styles.
  ZipfSampler zip_sampler(kNumZipcodes, 0.5);
  ZipfSampler style_sampler(kNumStyles, 1.0);
  ZipfSampler price_sampler(kNumPrices, 0.7);
  ZipfSampler date_sampler(kNumDates, 0.2);

  std::vector<int32_t> codes(8);
  for (size_t r = 0; r < options.num_rows; ++r) {
    size_t zip_code = zip_sampler.Sample(rng);
    size_t date_code = date_sampler.Sample(rng);
    size_t gender_code = rng.Bernoulli(0.62) ? 0 : 1;  // catalog skew
    size_t style_code = style_sampler.Sample(rng);
    size_t price_code = price_sampler.Sample(rng);
    // Cost tracks price with noise (margin varies by a few slots).
    double cost_center = static_cast<double>(price_code) *
                         static_cast<double>(kNumCosts) /
                         static_cast<double>(kNumPrices);
    int64_t cost_code = static_cast<int64_t>(cost_center) +
                        rng.UniformRange(-40, 40);
    cost_code = std::clamp<int64_t>(cost_code, 0,
                                    static_cast<int64_t>(kNumCosts) - 1);
    size_t shipment_code = rng.Bernoulli(0.85) ? 0 : 1;

    codes[0] = static_cast<int32_t>(zip_code);
    codes[1] = static_cast<int32_t>(date_code);
    codes[2] = static_cast<int32_t>(gender_code);
    codes[3] = static_cast<int32_t>(style_code);
    codes[4] = static_cast<int32_t>(price_code);
    codes[5] = 0;
    codes[6] = static_cast<int32_t>(cost_code);
    codes[7] = static_cast<int32_t>(shipment_code);
    table.AppendRowCodes(codes);
  }

  Result<QuasiIdentifier> qid = QuasiIdentifier::Create(
      table, {{"Zipcode", std::move(zipcode).value()},
              {"Order-date", std::move(date).value()},
              {"Gender", std::move(gender).value()},
              {"Style", std::move(style).value()},
              {"Price", std::move(price).value()},
              {"Quantity", std::move(quantity).value()},
              {"Cost", std::move(cost).value()},
              {"Shipment", std::move(shipment).value()}});
  if (!qid.ok()) return qid.status();

  SyntheticDataset dataset;
  dataset.table = std::move(table);
  dataset.qid = std::move(qid).value();
  return dataset;
}

}  // namespace incognito
