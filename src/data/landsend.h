#ifndef INCOGNITO_DATA_LANDSEND_H_
#define INCOGNITO_DATA_LANDSEND_H_

#include <cstdint>

#include "common/status.h"
#include "data/dataset.h"

namespace incognito {

/// Options for the synthetic Lands End (point-of-sale) generator.
struct LandsEndOptions {
  /// Row count. The paper's database has 4,591,581 records; the default is
  /// scaled down so the full benchmark suite completes in minutes — pass
  /// the paper's count to reproduce at full scale (the generator is O(n)).
  size_t num_rows = 250000;
  /// PRNG seed; the dataset is a deterministic function of (num_rows, seed).
  uint64_t seed = 19630101;
};

/// Generates a synthetic stand-in for the Lands End point-of-sale database
/// configured exactly as in paper Fig. 9 (right): eight quasi-identifier
/// attributes with the published domain sizes and hierarchies —
///
///   1. Zipcode    31953 values   round each digit  (height 5)
///   2. Order date   320 values   day→month→year→*  (height 3)
///   3. Gender         2 values   suppression       (height 1)
///   4. Style       1509 values   suppression       (height 1)
///   5. Price        346 values   round each digit  (height 4)
///   6. Quantity       1 value    suppression       (height 1)
///   7. Cost        1412 values   round each digit  (height 4)
///   8. Shipment       2 values   suppression       (height 1)
///
/// Zipcodes and styles are Zipf-skewed; cost is correlated with price, as
/// in real order data. See DESIGN.md §4 for the substitution rationale.
Result<SyntheticDataset> MakeLandsEndDataset(
    const LandsEndOptions& options = {});

}  // namespace incognito

#endif  // INCOGNITO_DATA_LANDSEND_H_
