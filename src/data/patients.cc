#include "data/patients.h"

#include "hierarchy/builders.h"

namespace incognito {

Result<PatientsDataset> MakePatientsDataset() {
  Table table{Schema({{"Birthdate", DataType::kString},
                      {"Sex", DataType::kString},
                      {"Zipcode", DataType::kInt64},
                      {"Disease", DataType::kString}})};
  // The six tuples of Figure 1 (Hospital Patient Data).
  const struct {
    const char* birthdate;
    const char* sex;
    int64_t zipcode;
    const char* disease;
  } rows[] = {
      {"1/21/76", "Male", 53715, "Flu"},
      {"4/13/86", "Female", 53715, "Hepatitis"},
      {"2/28/76", "Male", 53703, "Brochitis"},
      {"1/21/76", "Male", 53703, "Broken Arm"},
      {"4/13/86", "Female", 53706, "Sprained Ankle"},
      {"2/28/76", "Female", 53706, "Hang Nail"},
  };
  for (const auto& r : rows) {
    INCOGNITO_RETURN_IF_ERROR(table.AppendRow(
        {Value(r.birthdate), Value(r.sex), Value(r.zipcode),
         Value(r.disease)}));
  }

  // Birthdate (Fig. 2 c,d): {1/21/76, 2/28/76, 4/13/86} → {*}.
  Result<ValueHierarchy> birthdate = BuildSuppressionHierarchy(
      "Birthdate",
      table.dictionary(
          static_cast<size_t>(table.schema().FindColumn("Birthdate"))));
  if (!birthdate.ok()) return birthdate.status();

  // Sex (Fig. 2 e,f): {Male, Female} → {Person}.
  Result<ValueHierarchy> sex = BuildSuppressionHierarchy(
      "Sex", table.dictionary(static_cast<size_t>(table.schema().FindColumn("Sex"))),
      Value("Person"));
  if (!sex.ok()) return sex.status();

  // Zipcode (Fig. 2 a,b): two rounding levels, 53715 → 5371* → 537**.
  Result<ValueHierarchy> zipcode = BuildDigitRoundingHierarchy(
      "Zipcode", table.dictionary(
          static_cast<size_t>(table.schema().FindColumn("Zipcode"))),
      /*num_digits=*/5, /*levels=*/2);
  if (!zipcode.ok()) return zipcode.status();

  Result<QuasiIdentifier> qid = QuasiIdentifier::Create(
      table, {{"Birthdate", std::move(birthdate).value()},
              {"Sex", std::move(sex).value()},
              {"Zipcode", std::move(zipcode).value()}});
  if (!qid.ok()) return qid.status();

  PatientsDataset dataset;
  dataset.table = std::move(table);
  dataset.qid = std::move(qid).value();
  return dataset;
}

Table MakeVoterRegistrationTable() {
  Table table{Schema({{"Name", DataType::kString},
                      {"Birthdate", DataType::kString},
                      {"Sex", DataType::kString},
                      {"Zipcode", DataType::kInt64}})};
  const struct {
    const char* name;
    const char* birthdate;
    const char* sex;
    int64_t zipcode;
  } rows[] = {
      {"Andre", "1/21/76", "Male", 53715},
      {"Beth", "1/10/81", "Female", 55410},
      {"Carol", "10/1/44", "Female", 90210},
      {"Dan", "2/21/84", "Male", 2174},
      {"Ellen", "4/19/72", "Female", 2237},
  };
  for (const auto& r : rows) {
    Status s = table.AppendRow(
        {Value(r.name), Value(r.birthdate), Value(r.sex), Value(r.zipcode)});
    (void)s;  // Static rows with a static schema cannot fail.
  }
  return table;
}

}  // namespace incognito
