#ifndef INCOGNITO_DATA_DATASET_H_
#define INCOGNITO_DATA_DATASET_H_

#include <string>
#include <vector>

#include "core/quasi_identifier.h"
#include "relation/table.h"

namespace incognito {

/// A generated benchmark dataset: the microdata table plus the full
/// quasi-identifier (all attributes, in the order of paper Fig. 9, so the
/// QID-size sweeps can take prefixes with QuasiIdentifier::Prefix).
struct SyntheticDataset {
  Table table;
  QuasiIdentifier qid;
};

/// Per-attribute description used to verify a generated dataset against
/// the published schema (paper Fig. 9).
struct AttributeStats {
  std::string name;
  size_t domain_size = 0;      ///< distinct values in the attribute domain
  size_t realized_distinct = 0;  ///< distinct values appearing in the data
  size_t hierarchy_height = 0;
};

/// Computes per-attribute statistics of a dataset.
std::vector<AttributeStats> DescribeDataset(const SyntheticDataset& dataset);

}  // namespace incognito

#endif  // INCOGNITO_DATA_DATASET_H_
