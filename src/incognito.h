#ifndef INCOGNITO_INCOGNITO_H_
#define INCOGNITO_INCOGNITO_H_

/// Umbrella header: the library's full public API in one include.
/// Fine-grained headers remain available for faster builds.

#include "common/random.h"        // IWYU pragma: export
#include "common/status.h"        // IWYU pragma: export
#include "common/stopwatch.h"     // IWYU pragma: export
#include "common/strings.h"       // IWYU pragma: export
#include "core/binary_search.h"   // IWYU pragma: export
#include "core/bottom_up.h"       // IWYU pragma: export
#include "core/checker.h"         // IWYU pragma: export
#include "core/incognito.h"       // IWYU pragma: export
#include "core/ldiversity.h"      // IWYU pragma: export
#include "core/matrix_checker.h"  // IWYU pragma: export
#include "core/minimality.h"      // IWYU pragma: export
#include "core/quasi_identifier.h"  // IWYU pragma: export
#include "core/recoder.h"         // IWYU pragma: export
#include "core/star_schema.h"     // IWYU pragma: export
#include "data/adults.h"          // IWYU pragma: export
#include "data/dataset.h"         // IWYU pragma: export
#include "data/landsend.h"        // IWYU pragma: export
#include "data/patients.h"        // IWYU pragma: export
#include "freq/cube.h"            // IWYU pragma: export
#include "freq/frequency_set.h"   // IWYU pragma: export
#include "freq/key_codec.h"       // IWYU pragma: export
#include "freq/sensitive_frequency_set.h"  // IWYU pragma: export
#include "hierarchy/builders.h"   // IWYU pragma: export
#include "hierarchy/csv_hierarchy.h"  // IWYU pragma: export
#include "hierarchy/hierarchy.h"  // IWYU pragma: export
#include "hierarchy/validation.h"  // IWYU pragma: export
#include "lattice/candidate_gen.h"  // IWYU pragma: export
#include "lattice/dot_export.h"   // IWYU pragma: export
#include "lattice/graph_tables.h"  // IWYU pragma: export
#include "lattice/hash_tree.h"    // IWYU pragma: export
#include "lattice/lattice.h"      // IWYU pragma: export
#include "lattice/node.h"         // IWYU pragma: export
#include "metrics/metrics.h"      // IWYU pragma: export
#include "metrics/query_error.h"  // IWYU pragma: export
#include "models/cell_generalization.h"  // IWYU pragma: export
#include "models/cell_suppression.h"  // IWYU pragma: export
#include "models/datafly.h"       // IWYU pragma: export
#include "models/koptimize.h"     // IWYU pragma: export
#include "models/mondrian.h"      // IWYU pragma: export
#include "models/ordered_set.h"   // IWYU pragma: export
#include "models/subgraph.h"      // IWYU pragma: export
#include "models/subtree.h"       // IWYU pragma: export
#include "relation/binary_io.h"   // IWYU pragma: export
#include "relation/csv.h"         // IWYU pragma: export
#include "relation/dictionary.h"  // IWYU pragma: export
#include "relation/ops.h"         // IWYU pragma: export
#include "relation/schema.h"      // IWYU pragma: export
#include "relation/table.h"       // IWYU pragma: export
#include "relation/value.h"       // IWYU pragma: export
#include "service/job_spec.h"     // IWYU pragma: export
#include "service/problem_loader.h"  // IWYU pragma: export
#include "service/server.h"       // IWYU pragma: export
#include "service/service.h"      // IWYU pragma: export

#endif  // INCOGNITO_INCOGNITO_H_
