#include "models/cell_suppression.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/stopwatch.h"
#include "obs/obs.h"

namespace incognito {

namespace {

struct VecHash {
  size_t operator()(const std::vector<int32_t>& v) const {
    uint64_t h = 0xcbf29ce484222325ULL;
    for (int32_t x : v) {
      h ^= static_cast<uint32_t>(x);
      h *= 0x100000001b3ULL;
    }
    return static_cast<size_t>(h);
  }
};

constexpr int32_t kSuppressed = -1;

/// Shared implementation; `governor` == nullptr is the ungoverned path.
PartialResult<CellSuppressionResult> RunCellSuppressionImpl(
    const Table& table, const QuasiIdentifier& qid,
    const AnonymizationConfig& config, ExecutionGovernor* governor) {
  INCOGNITO_SPAN("model.cell_suppression");
  INCOGNITO_COUNT("model.cell_suppression.runs");
  if (config.k < 1) return Status::InvalidArgument("k must be >= 1");
  if (qid.size() == 0) {
    return Status::InvalidArgument("quasi-identifier must be non-empty");
  }
  const size_t n = qid.size();
  const size_t rows = table.num_rows();

  // cell[r][i]: the current (local) recoding of tuple r's attribute i —
  // its dictionary code, or kSuppressed.
  std::vector<std::vector<int32_t>> cell(rows, std::vector<int32_t>(n));
  std::vector<const int32_t*> cols(n);
  for (size_t i = 0; i < n; ++i) {
    cols[i] = table.ColumnCodes(qid.column(i)).data();
  }
  for (size_t r = 0; r < rows; ++r) {
    for (size_t i = 0; i < n; ++i) cell[r][i] = cols[i][r];
  }

  CellSuppressionResult result;
  Stopwatch timer;
  // Per round the grouping pass materializes one hash-map entry per group
  // — the frequency-set analogue this model charges.
  const int64_t round_bytes =
      static_cast<int64_t>(rows) *
      (static_cast<int64_t>(n) * static_cast<int64_t>(sizeof(int32_t)) + 48);

  // Wraps a budget trip into a partial result with an EMPTY view: the
  // intermediate recoding is not yet k-anonymous.
  auto stop_early = [&](Status trip) -> PartialResult<CellSuppressionResult> {
    CellSuppressionResult partial;
    partial.stats = result.stats;
    partial.stats.total_seconds = timer.ElapsedSeconds();
    if (governor != nullptr) governor->ExportTrips(&partial.stats);
    if (IsResourceGovernance(trip.code())) {
      return PartialResult<CellSuppressionResult>::Partial(
          std::move(trip), std::move(partial));
    }
    return trip;
  };

  std::vector<bool> violating(rows, false);
  std::vector<bool> removed(rows, false);
  while (true) {
    if (governor != nullptr) {
      Status checkpoint = governor->Check();
      if (!checkpoint.ok()) return stop_early(std::move(checkpoint));
      Status charged = governor->ChargeMemory(round_bytes);
      if (!charged.ok()) return stop_early(std::move(charged));
    }
    ++result.stats.nodes_checked;
    ++result.stats.table_scans;
    std::unordered_map<std::vector<int32_t>, int64_t, VecHash> groups;
    for (size_t r = 0; r < rows; ++r) {
      if (!removed[r]) ++groups[cell[r]];
    }
    int64_t below = 0;
    for (size_t r = 0; r < rows; ++r) {
      violating[r] = !removed[r] && groups[cell[r]] < config.k;
      if (violating[r]) ++below;
    }
    if (below == 0) {
      if (governor != nullptr) governor->ReleaseMemory(round_bytes);
      break;
    }

    // Pick the attribute with the most distinct (unsuppressed) values
    // among the violating tuples; suppressing it merges the most groups.
    std::vector<std::unordered_set<int32_t>> distinct(n);
    bool any_unsuppressed = false;
    for (size_t r = 0; r < rows; ++r) {
      if (!violating[r]) continue;
      for (size_t i = 0; i < n; ++i) {
        if (cell[r][i] != kSuppressed) {
          distinct[i].insert(cell[r][i]);
          any_unsuppressed = true;
        }
      }
    }
    if (!any_unsuppressed) {
      // Fully suppressed tuples still in an undersized group: remove them
      // (fewer than k such tuples remain in total).
      for (size_t r = 0; r < rows; ++r) {
        if (violating[r]) {
          removed[r] = true;
          ++result.tuples_suppressed;
        }
      }
      if (governor != nullptr) governor->ReleaseMemory(round_bytes);
      break;
    }
    size_t best = 0;
    for (size_t i = 1; i < n; ++i) {
      if (distinct[i].size() > distinct[best].size()) best = i;
    }
    for (size_t r = 0; r < rows; ++r) {
      if (violating[r] && cell[r][best] != kSuppressed) {
        cell[r][best] = kSuppressed;
        ++result.cells_suppressed;
      }
    }
    if (governor != nullptr) governor->ReleaseMemory(round_bytes);
  }

  // Materialize the view.
  std::vector<ColumnSpec> specs(table.schema().columns());
  for (size_t i = 0; i < n; ++i) {
    specs[qid.column(i)].type = DataType::kString;
  }
  result.view = Table{Schema(std::move(specs))};
  std::vector<Value> row(table.num_columns());
  for (size_t r = 0; r < rows; ++r) {
    if (removed[r]) continue;
    for (size_t c = 0; c < table.num_columns(); ++c) {
      row[c] = table.GetValue(r, c);
    }
    for (size_t i = 0; i < n; ++i) {
      if (cell[r][i] == kSuppressed) {
        row[qid.column(i)] = Value("*");
      } else {
        row[qid.column(i)] = Value(
            table.dictionary(qid.column(i)).value(cell[r][i]).ToString());
      }
    }
    INCOGNITO_RETURN_IF_ERROR(result.view.AppendRow(row));
  }
  result.stats.total_seconds = timer.ElapsedSeconds();
  if (governor != nullptr) governor->ExportTrips(&result.stats);
  return result;
}

}  // namespace

PartialResult<CellSuppressionResult> RunCellSuppression(
    const Table& table, const QuasiIdentifier& qid,
    const AnonymizationConfig& config, const RunContext& ctx) {
  return RunCellSuppressionImpl(table, qid, config, ctx.governor);
}

}  // namespace incognito
