#ifndef INCOGNITO_MODELS_SUBGRAPH_H_
#define INCOGNITO_MODELS_SUBGRAPH_H_

#include <cstdint>

#include "common/status.h"
#include "core/checker.h"
#include "core/quasi_identifier.h"
#include "relation/table.h"

namespace incognito {

/// Output of the multi-dimension full-subgraph recoder.
struct SubgraphResult {
  Table view;
  int64_t suppressed_tuples = 0;
  size_t num_cells = 0;     ///< final multi-attribute generalization cells
  int64_t promotions = 0;   ///< subgraph promotions applied
};

/// Multi-Dimension Full-Subgraph Recoding (paper §5.1.3): a single
/// recoding function φ over the *multi-attribute* value domain maps each
/// value vector to itself or a vector generalization, with the constraint
/// that whenever φ uses a generalized vector ḡ, the entire subgraph of
/// the multi-dimensional value generalization lattice rooted at ḡ
/// (paper Fig. 13) maps to ḡ. Equivalently, the recoding is a partition
/// of the domain into disjoint hierarchy-aligned boxes, one per used
/// vector — strictly more flexible than full-domain generalization
/// (different regions of the domain may generalize differently per
/// attribute) while staying hierarchy-faithful, unlike Mondrian's
/// arbitrary rank intervals.
///
/// Greedy heuristic instance of the model: starting from singleton cells,
/// repeatedly promote the cell-dimension pair absorbing the most
/// violating tuples, maintaining the disjoint-box invariant with a
/// closure pass (overlapping cells are joined in). Stops when at most
/// max(k, max_suppressed) tuples violate; leftovers are suppressed.
Result<SubgraphResult> RunGreedySubgraph(const Table& table,
                                         const QuasiIdentifier& qid,
                                         const AnonymizationConfig& config);

}  // namespace incognito

#endif  // INCOGNITO_MODELS_SUBGRAPH_H_
