#ifndef INCOGNITO_MODELS_SUBTREE_H_
#define INCOGNITO_MODELS_SUBTREE_H_

#include <cstdint>

#include "common/status.h"
#include "core/checker.h"
#include "core/quasi_identifier.h"
#include "relation/table.h"

namespace incognito {

/// Output of the greedy full-subtree recoder.
struct SubtreeResult {
  Table view;
  int64_t suppressed_tuples = 0;
  int64_t promotions = 0;  ///< subtree generalization steps applied
};

/// Single-Dimension Full-Subtree Recoding (paper §5.1.1, the model used by
/// Iyengar [11]): each attribute's recoding function maps values to
/// ancestors in the value generalization hierarchy, with the constraint
/// that whenever a generalized value g is used, the *entire* subtree rooted
/// at g maps to g — but, unlike full-domain generalization, different
/// subtrees of one attribute may sit at different levels.
///
/// This implementation is a greedy heuristic (the paper's instances use a
/// genetic algorithm; any search strategy fits the model): starting from
/// the identity cut, it repeatedly promotes the subtree that covers the
/// most tuples currently violating k-anonymity, until the view satisfies
/// k-anonymity within the suppression budget (violating leftovers are
/// suppressed under the same budget rule as Datafly).
Result<SubtreeResult> RunGreedySubtree(const Table& table,
                                       const QuasiIdentifier& qid,
                                       const AnonymizationConfig& config);

}  // namespace incognito

#endif  // INCOGNITO_MODELS_SUBTREE_H_
