#include "models/ordered_set.h"

#include <algorithm>
#include <unordered_map>

#include "common/stopwatch.h"
#include "common/strings.h"
#include "obs/obs.h"

namespace incognito {

namespace {

struct VecHash {
  size_t operator()(const std::vector<int32_t>& v) const {
    uint64_t h = 0xcbf29ce484222325ULL;
    for (int32_t x : v) {
      h ^= static_cast<uint32_t>(x);
      h *= 0x100000001b3ULL;
    }
    return static_cast<size_t>(h);
  }
};

/// Partition state of one attribute: the domain in sorted order, and for
/// each rank the id of the interval containing it. Intervals are
/// contiguous rank ranges.
struct AttributePartition {
  std::vector<int32_t> sorted_codes;     // rank -> dictionary code
  std::vector<int32_t> rank_of_code;     // dictionary code -> rank
  std::vector<int32_t> interval_of_rank; // rank -> interval id (ascending)
  size_t num_intervals = 0;

  void InitSingletons(const Dictionary& dict) {
    sorted_codes = dict.SortedCodes();
    rank_of_code.resize(sorted_codes.size());
    for (size_t rank = 0; rank < sorted_codes.size(); ++rank) {
      rank_of_code[static_cast<size_t>(sorted_codes[rank])] =
          static_cast<int32_t>(rank);
    }
    interval_of_rank.resize(sorted_codes.size());
    for (size_t rank = 0; rank < sorted_codes.size(); ++rank) {
      interval_of_rank[rank] = static_cast<int32_t>(rank);
    }
    num_intervals = sorted_codes.size();
  }

  /// Merges adjacent interval pairs (0&1, 2&3, ...), halving the count.
  void Halve() {
    for (int32_t& id : interval_of_rank) id /= 2;
    num_intervals = (num_intervals + 1) / 2;
  }

  /// "[lo-hi]" label of an interval (or the single value's label).
  std::string Label(const Dictionary& dict, int32_t interval) const {
    int32_t lo_code = -1, hi_code = -1;
    for (size_t rank = 0; rank < interval_of_rank.size(); ++rank) {
      if (interval_of_rank[rank] == interval) {
        if (lo_code < 0) lo_code = sorted_codes[rank];
        hi_code = sorted_codes[rank];
      }
    }
    if (lo_code == hi_code) return dict.value(lo_code).ToString();
    return "[" + dict.value(lo_code).ToString() + "-" +
           dict.value(hi_code).ToString() + "]";
  }
};

/// Shared implementation; `governor` == nullptr is the ungoverned path.
PartialResult<OrderedSetResult> RunOrderedSetImpl(
    const Table& table, const QuasiIdentifier& qid,
    const AnonymizationConfig& config, ExecutionGovernor* governor) {
  INCOGNITO_SPAN("model.ordered_set");
  INCOGNITO_COUNT("model.ordered_set.runs");
  if (config.k < 1) return Status::InvalidArgument("k must be >= 1");
  if (qid.size() == 0) {
    return Status::InvalidArgument("quasi-identifier must be non-empty");
  }
  const size_t n = qid.size();
  const size_t rows = table.num_rows();
  const int64_t budget = std::max(config.k, config.max_suppressed);

  std::vector<AttributePartition> parts(n);
  std::vector<const int32_t*> cols(n);
  for (size_t i = 0; i < n; ++i) {
    parts[i].InitSingletons(table.dictionary(qid.column(i)));
    cols[i] = table.ColumnCodes(qid.column(i)).data();
  }

  Stopwatch timer;
  AlgorithmStats stats;
  // Per round the grouping pass materializes one interval key per row plus
  // the group hash map — the frequency-set analogue this model charges.
  const int64_t round_bytes =
      static_cast<int64_t>(rows) *
      (static_cast<int64_t>(n) * static_cast<int64_t>(sizeof(int32_t)) + 48);

  // Wraps a budget trip into a partial result with an EMPTY view: the
  // intermediate partitioning is not yet k-anonymous.
  auto stop_early = [&](Status trip) -> PartialResult<OrderedSetResult> {
    OrderedSetResult partial;
    stats.total_seconds = timer.ElapsedSeconds();
    if (governor != nullptr) governor->ExportTrips(&stats);
    partial.stats = stats;
    if (IsResourceGovernance(trip.code())) {
      return PartialResult<OrderedSetResult>::Partial(std::move(trip),
                                                      std::move(partial));
    }
    return trip;
  };

  std::vector<bool> violating(rows, false);
  while (true) {
    if (governor != nullptr) {
      Status checkpoint = governor->Check();
      if (!checkpoint.ok()) return stop_early(std::move(checkpoint));
      Status charged = governor->ChargeMemory(round_bytes);
      if (!charged.ok()) return stop_early(std::move(charged));
    }
    ++stats.nodes_checked;
    ++stats.table_scans;
    std::unordered_map<std::vector<int32_t>, int64_t, VecHash> groups;
    std::vector<std::vector<int32_t>> keys(rows, std::vector<int32_t>(n));
    for (size_t r = 0; r < rows; ++r) {
      for (size_t i = 0; i < n; ++i) {
        int32_t rank =
            parts[i].rank_of_code[static_cast<size_t>(cols[i][r])];
        keys[r][i] = parts[i].interval_of_rank[static_cast<size_t>(rank)];
      }
      ++groups[keys[r]];
    }
    int64_t below = 0;
    for (size_t r = 0; r < rows; ++r) {
      violating[r] = groups[keys[r]] < config.k;
      if (violating[r]) ++below;
    }
    if (governor != nullptr) governor->ReleaseMemory(round_bytes);
    if (below <= budget) break;

    // Halve the partition of the attribute with the most intervals.
    size_t widest = 0;
    for (size_t i = 1; i < n; ++i) {
      if (parts[i].num_intervals > parts[widest].num_intervals) widest = i;
    }
    if (parts[widest].num_intervals <= 1) break;  // fully generalized
    parts[widest].Halve();
  }

  // Materialize the view.
  OrderedSetResult result;
  std::vector<ColumnSpec> specs(table.schema().columns());
  for (size_t i = 0; i < n; ++i) {
    specs[qid.column(i)].type = DataType::kString;
  }
  result.view = Table{Schema(std::move(specs))};

  // Interval labels, precomputed per attribute.
  std::vector<std::unordered_map<int32_t, std::string>> labels(n);
  for (size_t i = 0; i < n; ++i) {
    const Dictionary& dict = table.dictionary(qid.column(i));
    for (int32_t interval : parts[i].interval_of_rank) {
      if (labels[i].find(interval) == labels[i].end()) {
        labels[i][interval] = parts[i].Label(dict, interval);
      }
    }
    result.intervals_per_attribute.push_back(labels[i].size());
  }

  std::vector<Value> row(table.num_columns());
  for (size_t r = 0; r < rows; ++r) {
    if (violating[r]) {
      ++result.suppressed_tuples;
      continue;
    }
    for (size_t c = 0; c < table.num_columns(); ++c) {
      row[c] = table.GetValue(r, c);
    }
    for (size_t i = 0; i < n; ++i) {
      int32_t rank = parts[i].rank_of_code[static_cast<size_t>(cols[i][r])];
      int32_t interval =
          parts[i].interval_of_rank[static_cast<size_t>(rank)];
      row[qid.column(i)] = Value(labels[i][interval]);
    }
    INCOGNITO_RETURN_IF_ERROR(result.view.AppendRow(row));
  }
  stats.total_seconds = timer.ElapsedSeconds();
  if (governor != nullptr) governor->ExportTrips(&stats);
  result.stats = stats;
  return result;
}

}  // namespace

PartialResult<OrderedSetResult> RunOrderedSetPartition(
    const Table& table, const QuasiIdentifier& qid,
    const AnonymizationConfig& config, const RunContext& ctx) {
  return RunOrderedSetImpl(table, qid, config, ctx.governor);
}

Result<OptimalUnivariateResult> OptimalUnivariatePartition(
    const Table& table, const QuasiIdentifier& qid,
    const AnonymizationConfig& config) {
  if (config.k < 1) return Status::InvalidArgument("k must be >= 1");
  if (qid.size() != 1) {
    return Status::InvalidArgument(
        "OptimalUnivariatePartition requires a single-attribute "
        "quasi-identifier");
  }
  const size_t col = qid.column(0);
  const Dictionary& dict = table.dictionary(col);
  const size_t m = dict.size();
  if (m > 5000) {
    return Status::NotSupported(StringPrintf(
        "domain has %zu distinct values; the O(m^2) exact DP is capped at "
        "5000 — use RunOrderedSetPartition instead",
        m));
  }
  if (static_cast<int64_t>(table.num_rows()) < config.k) {
    return Status::FailedPrecondition(
        "table has fewer rows than k; no k-anonymous partition exists");
  }

  // Histogram over the sorted domain.
  std::vector<int32_t> sorted = dict.SortedCodes();
  std::vector<int32_t> rank_of_code(m);
  for (size_t rank = 0; rank < m; ++rank) {
    rank_of_code[static_cast<size_t>(sorted[rank])] =
        static_cast<int32_t>(rank);
  }
  std::vector<int64_t> hist(m, 0);
  for (int32_t code : table.ColumnCodes(col)) {
    ++hist[static_cast<size_t>(rank_of_code[static_cast<size_t>(code)])];
  }
  std::vector<int64_t> prefix(m + 1, 0);
  for (size_t i = 0; i < m; ++i) prefix[i + 1] = prefix[i] + hist[i];

  // dp[i]: minimal Σ size² partitioning ranks [0, i) into intervals of
  // count >= k (infeasible = infinity). cut[i]: the j achieving it.
  constexpr double kInf = 1e300;
  std::vector<double> dp(m + 1, kInf);
  std::vector<size_t> cut(m + 1, 0);
  dp[0] = 0;
  for (size_t i = 1; i <= m; ++i) {
    for (size_t j = 0; j < i; ++j) {
      if (dp[j] >= kInf) continue;
      int64_t size = prefix[i] - prefix[j];
      if (size < config.k) break;  // shrinking j further only shrinks size
      double cost = dp[j] + static_cast<double>(size) * size;
      if (cost < dp[i]) {
        dp[i] = cost;
        cut[i] = j;
      }
    }
  }
  if (dp[m] >= kInf) {
    // Cannot happen when total >= k (the single full interval qualifies),
    // but guard against empty-value pathologies.
    return Status::Internal("no feasible partition found");
  }

  // Recover the interval boundaries (rank ranges).
  std::vector<std::pair<size_t, size_t>> intervals;  // [begin, end) ranks
  for (size_t i = m; i > 0; i = cut[i]) {
    intervals.emplace_back(cut[i], i);
  }
  std::reverse(intervals.begin(), intervals.end());

  // Interval id and label per rank.
  std::vector<int32_t> interval_of_rank(m);
  std::vector<std::string> labels(intervals.size());
  OptimalUnivariateResult result;
  for (size_t t = 0; t < intervals.size(); ++t) {
    auto [begin, end] = intervals[t];
    for (size_t rank = begin; rank < end; ++rank) {
      interval_of_rank[rank] = static_cast<int32_t>(t);
    }
    const Value& lo = dict.value(sorted[begin]);
    const Value& hi = dict.value(sorted[end - 1]);
    labels[t] = begin + 1 == end
                    ? lo.ToString()
                    : "[" + lo.ToString() + "-" + hi.ToString() + "]";
    result.interval_sizes.push_back(prefix[end] - prefix[begin]);
  }
  result.discernibility = dp[m];

  // Materialize the view.
  std::vector<ColumnSpec> specs(table.schema().columns());
  specs[col].type = DataType::kString;
  result.view = Table{Schema(std::move(specs))};
  std::vector<Value> row(table.num_columns());
  for (size_t r = 0; r < table.num_rows(); ++r) {
    for (size_t c = 0; c < table.num_columns(); ++c) {
      row[c] = table.GetValue(r, c);
    }
    int32_t rank = rank_of_code[static_cast<size_t>(table.GetCode(r, col))];
    row[col] = Value(labels[static_cast<size_t>(
        interval_of_rank[static_cast<size_t>(rank)])]);
    INCOGNITO_RETURN_IF_ERROR(result.view.AppendRow(row));
  }
  return result;
}

}  // namespace incognito
