#include "models/datafly.h"

#include <algorithm>
#include <unordered_set>
#include <vector>

#include "common/stopwatch.h"
#include "core/recoder.h"
#include "freq/frequency_set.h"
#include "obs/obs.h"

namespace incognito {

namespace {

/// Shared implementation; `governor` == nullptr is the ungoverned path.
PartialResult<DataflyResult> RunDataflyImpl(const Table& table,
                                            const QuasiIdentifier& qid,
                                            const AnonymizationConfig& config,
                                            ExecutionGovernor* governor) {
  INCOGNITO_SPAN("model.datafly");
  INCOGNITO_COUNT("model.datafly.runs");
  if (config.k < 1) return Status::InvalidArgument("k must be >= 1");
  if (qid.size() == 0) {
    return Status::InvalidArgument("quasi-identifier must be non-empty");
  }

  Stopwatch timer;
  DataflyResult result;
  const size_t n = qid.size();
  SubsetNode node = SubsetNode::Full(std::vector<int32_t>(n, 0));

  // Datafly's stopping rule: keep generalizing while MORE than this many
  // tuples violate k-anonymity; the remainder is suppressed.
  const int64_t budget = std::max(config.k, config.max_suppressed);

  // Wraps a budget trip into a partial result: the greedy walk's current
  // node is reported, but the view stays empty — the intermediate state is
  // not k-anonymous and releasing it would violate the privacy contract.
  auto stop_early = [&](Status trip) -> PartialResult<DataflyResult> {
    result.node = node;
    result.stats.total_seconds = timer.ElapsedSeconds();
    if (governor != nullptr) governor->ExportTrips(&result.stats);
    if (IsResourceGovernance(trip.code())) {
      return PartialResult<DataflyResult>::Partial(std::move(trip),
                                                   std::move(result));
    }
    return trip;
  };

  while (true) {
    if (governor != nullptr) {
      Status checkpoint = governor->Check();
      if (!checkpoint.ok()) return stop_early(std::move(checkpoint));
    }
    FrequencySet freq = FrequencySet::Compute(table, qid, node);
    int64_t freq_bytes = static_cast<int64_t>(freq.MemoryBytes());
    if (governor != nullptr) {
      Status charged = governor->ChargeMemory(freq_bytes);
      if (!charged.ok()) return stop_early(std::move(charged));
    }
    ++result.stats.table_scans;
    ++result.stats.nodes_checked;
    result.stats.freq_groups_built += static_cast<int64_t>(freq.NumGroups());
    if (freq.TuplesBelowK(config.k) <= budget) {
      if (governor != nullptr) governor->ReleaseMemory(freq_bytes);
      break;
    }

    // Count distinct generalized values per attribute in the current view.
    std::vector<std::unordered_set<int32_t>> distinct(n);
    freq.ForEachGroup([&](const int32_t* codes, int64_t count) {
      (void)count;
      for (size_t i = 0; i < n; ++i) distinct[i].insert(codes[i]);
    });
    // Generalize the attribute with the most distinct values that can
    // still be generalized.
    int best = -1;
    size_t best_distinct = 0;
    for (size_t i = 0; i < n; ++i) {
      if (static_cast<size_t>(node.levels[i]) >= qid.hierarchy(i).height()) {
        continue;
      }
      if (best < 0 || distinct[i].size() > best_distinct) {
        best = static_cast<int>(i);
        best_distinct = distinct[i].size();
      }
    }
    if (governor != nullptr) governor->ReleaseMemory(freq_bytes);
    if (best < 0) break;  // everything at the top; suppression must finish it
    ++node.levels[static_cast<size_t>(best)];
  }

  AnonymizationConfig recode_config = config;
  recode_config.max_suppressed = budget;
  Result<RecodeResult> recoded =
      ApplyFullDomainGeneralization(table, qid, node, recode_config);
  if (!recoded.ok()) return recoded.status();

  result.node = std::move(node);
  result.view = std::move(recoded.value().view);
  result.suppressed_tuples = recoded.value().suppressed_tuples;
  result.stats.total_seconds = timer.ElapsedSeconds();
  if (governor != nullptr) governor->ExportTrips(&result.stats);
  return result;
}

}  // namespace

PartialResult<DataflyResult> RunDatafly(const Table& table,
                                        const QuasiIdentifier& qid,
                                        const AnonymizationConfig& config,
                                        const RunContext& ctx) {
  return RunDataflyImpl(table, qid, config, ctx.governor);
}

}  // namespace incognito
