#include "models/subgraph.h"

#include <algorithm>
#include <map>
#include <unordered_map>
#include <vector>

#include "freq/frequency_set.h"
#include "obs/obs.h"

namespace incognito {

namespace {

struct VecHash {
  size_t operator()(const std::vector<int32_t>& v) const {
    uint64_t h = 0xcbf29ce484222325ULL;
    for (int32_t x : v) {
      h ^= static_cast<uint32_t>(x);
      h *= 0x100000001b3ULL;
    }
    return static_cast<size_t>(h);
  }
};

/// A hierarchy-aligned box of the multi-attribute value domain: per
/// dimension, a level and the value code at that level. The box's region
/// is the product of the per-dimension value subtrees.
struct Cell {
  std::vector<int32_t> levels;
  std::vector<int32_t> codes;
  bool alive = true;
};

/// Returns true iff box `inner` is contained in box `outer`: per
/// dimension, inner's subtree lies within outer's.
bool Contains(const QuasiIdentifier& qid, const Cell& outer,
              const Cell& inner) {
  for (size_t d = 0; d < qid.size(); ++d) {
    if (inner.levels[d] > outer.levels[d]) return false;
    if (qid.hierarchy(d).GeneralizeFrom(
            static_cast<size_t>(inner.levels[d]), inner.codes[d],
            static_cast<size_t>(outer.levels[d])) != outer.codes[d]) {
      return false;
    }
  }
  return true;
}

/// Returns true iff two boxes intersect. Per dimension, hierarchy
/// subtrees are either nested or disjoint, so the boxes intersect iff in
/// every dimension one side's subtree contains the other's.
bool Intersects(const QuasiIdentifier& qid, const Cell& a, const Cell& b) {
  for (size_t d = 0; d < qid.size(); ++d) {
    const ValueHierarchy& h = qid.hierarchy(d);
    bool a_in_b =
        a.levels[d] <= b.levels[d] &&
        h.GeneralizeFrom(static_cast<size_t>(a.levels[d]), a.codes[d],
                         static_cast<size_t>(b.levels[d])) == b.codes[d];
    bool b_in_a =
        b.levels[d] <= a.levels[d] &&
        h.GeneralizeFrom(static_cast<size_t>(b.levels[d]), b.codes[d],
                         static_cast<size_t>(a.levels[d])) == a.codes[d];
    if (!a_in_b && !b_in_a) return false;
  }
  return true;
}

/// Joins box `other` into `target`: per dimension, the coarser of the two
/// (they intersect, so one contains the other per dimension).
void JoinInto(const QuasiIdentifier& qid, const Cell& other, Cell* target) {
  for (size_t d = 0; d < qid.size(); ++d) {
    if (other.levels[d] > target->levels[d]) {
      target->levels[d] = other.levels[d];
      target->codes[d] = other.codes[d];
    }
  }
}

}  // namespace

Result<SubgraphResult> RunGreedySubgraph(const Table& table,
                                         const QuasiIdentifier& qid,
                                         const AnonymizationConfig& config) {
  INCOGNITO_SPAN("model.subgraph");
  INCOGNITO_COUNT("model.subgraph.runs");
  if (config.k < 1) return Status::InvalidArgument("k must be >= 1");
  if (qid.size() == 0) {
    return Status::InvalidArgument("quasi-identifier must be non-empty");
  }
  const size_t n = qid.size();
  const int64_t budget = std::max(config.k, config.max_suppressed);

  // Distinct base vectors with multiplicities.
  std::vector<int32_t> dims(n);
  for (size_t i = 0; i < n; ++i) dims[i] = static_cast<int32_t>(i);
  FrequencySet freq = FrequencySet::Compute(
      table, qid, SubsetNode(dims, std::vector<int32_t>(n, 0)));
  std::vector<std::vector<int32_t>> vectors;
  std::vector<int64_t> counts;
  freq.ForEachGroup([&](const int32_t* codes, int64_t count) {
    vectors.emplace_back(codes, codes + n);
    counts.push_back(count);
  });
  const size_t distinct = vectors.size();

  // Initial cells: one singleton box per distinct vector.
  std::vector<Cell> cells(distinct);
  std::vector<size_t> cell_of(distinct);  // vector index -> cell index
  for (size_t v = 0; v < distinct; ++v) {
    cells[v].levels.assign(n, 0);
    cells[v].codes = vectors[v];
    cell_of[v] = v;
  }

  SubgraphResult result;
  std::vector<int64_t> cell_count;
  while (true) {
    // Group sizes per live cell.
    cell_count.assign(cells.size(), 0);
    for (size_t v = 0; v < distinct; ++v) {
      cell_count[cell_of[v]] += counts[v];
    }
    int64_t below = 0;
    for (size_t v = 0; v < distinct; ++v) {
      if (cell_count[cell_of[v]] < config.k) below += counts[v];
    }
    if (below <= budget) break;

    // Candidate promotions: for each violating cell and promotable
    // dimension, score by the violating tuple mass inside the (un-closed)
    // promoted box.
    std::map<std::pair<std::vector<int32_t>, std::vector<int32_t>>, int64_t>
        scores;  // (levels, codes) -> violating mass
    for (size_t v = 0; v < distinct; ++v) {
      const Cell& cell = cells[cell_of[v]];
      if (cell_count[cell_of[v]] >= config.k) continue;
      for (size_t d = 0; d < n; ++d) {
        const ValueHierarchy& h = qid.hierarchy(d);
        if (static_cast<size_t>(cell.levels[d]) >= h.height()) continue;
        std::vector<int32_t> levels = cell.levels;
        std::vector<int32_t> codes = cell.codes;
        codes[d] = h.Parent(static_cast<size_t>(levels[d]), codes[d]);
        ++levels[d];
        scores[{levels, codes}] += counts[v];
      }
    }
    if (scores.empty()) break;  // nothing promotable; suppress leftovers
    auto best = std::max_element(
        scores.begin(), scores.end(),
        [](const auto& a, const auto& b) { return a.second < b.second; });

    // Closure: join every intersecting live cell into the candidate until
    // the candidate's box is disjoint from or contains every live cell.
    Cell candidate;
    candidate.levels = best->first.first;
    candidate.codes = best->first.second;
    bool changed = true;
    while (changed) {
      changed = false;
      for (const Cell& cell : cells) {
        if (!cell.alive) continue;
        if (Intersects(qid, candidate, cell) &&
            !Contains(qid, candidate, cell)) {
          JoinInto(qid, cell, &candidate);
          changed = true;
        }
      }
    }
    // Absorb contained cells and reassign their vectors.
    size_t new_index = cells.size();
    for (size_t c = 0; c < cells.size(); ++c) {
      if (cells[c].alive && Contains(qid, candidate, cells[c])) {
        cells[c].alive = false;
      }
    }
    cells.push_back(candidate);
    for (size_t v = 0; v < distinct; ++v) {
      if (!cells[cell_of[v]].alive) cell_of[v] = new_index;
    }
    ++result.promotions;
  }

  // Final grouping and materialization; violating leftovers suppressed.
  cell_count.assign(cells.size(), 0);
  for (size_t v = 0; v < distinct; ++v) cell_count[cell_of[v]] += counts[v];
  std::unordered_map<std::vector<int32_t>, size_t, VecHash> vector_index;
  for (size_t v = 0; v < distinct; ++v) vector_index[vectors[v]] = v;

  std::vector<ColumnSpec> specs(table.schema().columns());
  for (size_t i = 0; i < n; ++i) {
    specs[qid.column(i)].type = DataType::kString;
  }
  result.view = Table{Schema(std::move(specs))};

  std::vector<const int32_t*> cols(n);
  for (size_t i = 0; i < n; ++i) {
    cols[i] = table.ColumnCodes(qid.column(i)).data();
  }
  std::vector<Value> row(table.num_columns());
  std::vector<int32_t> probe(n);
  for (size_t r = 0; r < table.num_rows(); ++r) {
    for (size_t i = 0; i < n; ++i) probe[i] = cols[i][r];
    size_t v = vector_index.at(probe);
    const Cell& cell = cells[cell_of[v]];
    if (cell_count[cell_of[v]] < config.k) {
      ++result.suppressed_tuples;
      continue;
    }
    for (size_t c = 0; c < table.num_columns(); ++c) {
      row[c] = table.GetValue(r, c);
    }
    for (size_t i = 0; i < n; ++i) {
      row[qid.column(i)] =
          Value(qid.hierarchy(i)
                    .LevelValue(static_cast<size_t>(cell.levels[i]),
                                cell.codes[i])
                    .ToString());
    }
    INCOGNITO_RETURN_IF_ERROR(result.view.AppendRow(row));
  }
  size_t live = 0;
  for (const Cell& cell : cells) live += cell.alive ? 1 : 0;
  result.num_cells = live;
  return result;
}

}  // namespace incognito
