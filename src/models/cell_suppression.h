#ifndef INCOGNITO_MODELS_CELL_SUPPRESSION_H_
#define INCOGNITO_MODELS_CELL_SUPPRESSION_H_

#include <cstdint>

#include "common/status.h"
#include "core/checker.h"
#include "core/quasi_identifier.h"
#include "core/run_context.h"
#include "relation/table.h"
#include "robust/partial_result.h"

namespace incognito {

/// Output of the cell-suppression recoder.
struct CellSuppressionResult {
  Table view;
  int64_t cells_suppressed = 0;
  int64_t tuples_suppressed = 0;

  /// Suppression rounds evaluated plus governor activity (governed runs).
  AlgorithmStats stats;
};

/// Local recoding by Cell Suppression (paper §5.2, [1, 13, 20]): instead of
/// recoding whole domains, individual cells of individual tuples are
/// replaced by '*'. A suppressed cell is its own value for grouping (a '*'
/// matches only another '*'), so the released view is k-anonymous in the
/// standard multiset sense.
///
/// The exact minimal-cell-suppression problem is NP-hard [13]; this is a
/// greedy heuristic: while undersized groups remain, suppress — in every
/// violating tuple — the quasi-identifier attribute with the most distinct
/// values among the violating tuples, merging them into larger groups.
/// Tuples still violating after all their QID cells are suppressed are
/// removed.
///
/// `ctx` carries the execution parameters (docs/API.md): a default
/// RunContext reproduces the legacy ungoverned call. With ctx.governor
/// set, the recoder polls the governor per suppression round and charges
/// each round's grouping structure against its memory budget; a budget
/// trip returns PartialResult::Partial with an EMPTY view (the
/// intermediate recoding is not yet k-anonymous and must not be released);
/// only the stats carry the progress made. The algorithm is
/// single-threaded: ctx.num_threads and ctx.scheduling are ignored.
PartialResult<CellSuppressionResult> RunCellSuppression(
    const Table& table, const QuasiIdentifier& qid,
    const AnonymizationConfig& config, const RunContext& ctx = {});

}  // namespace incognito

#endif  // INCOGNITO_MODELS_CELL_SUPPRESSION_H_
