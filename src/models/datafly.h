#ifndef INCOGNITO_MODELS_DATAFLY_H_
#define INCOGNITO_MODELS_DATAFLY_H_

#include "common/status.h"
#include "core/checker.h"
#include "core/quasi_identifier.h"
#include "core/run_context.h"
#include "lattice/node.h"
#include "relation/table.h"
#include "robust/partial_result.h"

namespace incognito {

/// Output of the Datafly heuristic.
struct DataflyResult {
  /// The full-domain generalization the greedy search stopped at.
  SubsetNode node;
  /// The released view (generalized, outliers suppressed).
  Table view;
  int64_t suppressed_tuples = 0;
  AlgorithmStats stats;
};

/// Sweeney's Datafly algorithm (paper §6, [17]): a greedy full-domain
/// heuristic that repeatedly generalizes the attribute with the most
/// distinct values in the current (partially generalized) table until at
/// most max(k, max_suppressed) tuples violate k-anonymity, then suppresses
/// those outliers. The result is guaranteed k-anonymous but — unlike
/// Incognito — carries no minimality guarantee; the model-comparison bench
/// quantifies the quality gap.
///
/// `ctx` carries the execution parameters (docs/API.md): a default
/// RunContext reproduces the legacy ungoverned call. With ctx.governor
/// set, the walk polls the governor per greedy generalization step and
/// charges each step's frequency set against its memory budget; a budget
/// trip returns PartialResult::Partial carrying the node the greedy walk
/// had reached — but an EMPTY view and suppressed_tuples == 0, because
/// Datafly's intermediate state is NOT yet k-anonymous and must not be
/// released. The algorithm is single-threaded: ctx.num_threads and
/// ctx.scheduling are ignored.
PartialResult<DataflyResult> RunDatafly(const Table& table,
                                        const QuasiIdentifier& qid,
                                        const AnonymizationConfig& config,
                                        const RunContext& ctx = {});

}  // namespace incognito

#endif  // INCOGNITO_MODELS_DATAFLY_H_
