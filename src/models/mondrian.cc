#include "models/mondrian.h"

#include <algorithm>
#include <unordered_set>
#include <vector>

#include "common/stopwatch.h"
#include "common/strings.h"
#include "obs/obs.h"

namespace incognito {

namespace {

/// A partition under refinement: a set of row indices.
struct Partition {
  std::vector<size_t> row_indices;
};

/// Shared implementation; `governor` == nullptr is the ungoverned path.
PartialResult<MondrianResult> RunMondrianImpl(
    const Table& table, const QuasiIdentifier& qid,
    const AnonymizationConfig& config, ExecutionGovernor* governor) {
  INCOGNITO_SPAN("model.mondrian");
  INCOGNITO_COUNT("model.mondrian.runs");
  if (config.k < 1) return Status::InvalidArgument("k must be >= 1");
  if (qid.size() == 0) {
    return Status::InvalidArgument("quasi-identifier must be non-empty");
  }
  if (static_cast<int64_t>(table.num_rows()) < config.k) {
    return Status::FailedPrecondition(StringPrintf(
        "table has %zu rows, fewer than k=%lld; no partitioning exists",
        table.num_rows(), static_cast<long long>(config.k)));
  }
  const size_t n = qid.size();

  // Rank encoding: per attribute, dictionary code → rank in value order.
  std::vector<std::vector<int32_t>> rank_of_code(n);
  std::vector<std::vector<int32_t>> code_of_rank(n);
  std::vector<const int32_t*> cols(n);
  for (size_t i = 0; i < n; ++i) {
    const Dictionary& dict = table.dictionary(qid.column(i));
    code_of_rank[i] = dict.SortedCodes();
    rank_of_code[i].resize(dict.size());
    for (size_t rank = 0; rank < code_of_rank[i].size(); ++rank) {
      rank_of_code[i][static_cast<size_t>(code_of_rank[i][rank])] =
          static_cast<int32_t>(rank);
    }
    cols[i] = table.ColumnCodes(qid.column(i)).data();
  }
  auto rank_at = [&](size_t row, size_t attr) {
    return rank_of_code[attr][static_cast<size_t>(cols[attr][row])];
  };

  // Greedy strict multidimensional partitioning with median splits.
  std::vector<Partition> done;
  std::vector<Partition> work;
  {
    Partition all;
    all.row_indices.resize(table.num_rows());
    for (size_t r = 0; r < table.num_rows(); ++r) all.row_indices[r] = r;
    work.push_back(std::move(all));
  }
  Stopwatch timer;
  AlgorithmStats stats;
  Status trip;  // first governance trip (refinement stops, view released)
  std::vector<size_t> scratch;
  while (!work.empty()) {
    if (governor != nullptr) {
      Status checkpoint = governor->Check();
      if (!checkpoint.ok()) {
        if (!IsResourceGovernance(checkpoint.code())) return checkpoint;
        // Graceful degradation: stop refining and release every pending
        // partition unsplit — each still holds >= k tuples, so the coarser
        // view remains k-anonymous.
        trip = std::move(checkpoint);
        for (Partition& p : work) done.push_back(std::move(p));
        work.clear();
        break;
      }
    }
    ++stats.nodes_checked;
    Partition part = std::move(work.back());
    work.pop_back();

    // Choose the allowable split dimension with the widest normalized
    // range of ranks present in this partition.
    int best_attr = -1;
    double best_width = -1;
    for (size_t i = 0; i < n; ++i) {
      int32_t lo = INT32_MAX, hi = INT32_MIN;
      for (size_t r : part.row_indices) {
        int32_t rank = rank_at(r, i);
        lo = std::min(lo, rank);
        hi = std::max(hi, rank);
      }
      if (hi <= lo) continue;  // single value; cannot split
      double width = static_cast<double>(hi - lo) /
                     static_cast<double>(code_of_rank[i].size());
      if (width > best_width) {
        best_width = width;
        best_attr = static_cast<int>(i);
      }
    }

    bool split_done = false;
    if (best_attr >= 0) {
      // Median split on the chosen dimension, between distinct values so
      // the halves are well-defined intervals.
      scratch = part.row_indices;
      size_t attr = static_cast<size_t>(best_attr);
      std::sort(scratch.begin(), scratch.end(), [&](size_t a, size_t b) {
        return rank_at(a, attr) < rank_at(b, attr);
      });
      size_t median = scratch.size() / 2;
      // Move the split point to a boundary between distinct rank values.
      size_t split = median;
      while (split < scratch.size() &&
             rank_at(scratch[split], attr) ==
                 rank_at(scratch[median == 0 ? 0 : median - 1], attr)) {
        ++split;
      }
      // Try the boundary at/after the median; if a half would fall below
      // k, try the boundary before the median's value run instead.
      auto try_split = [&](size_t at) {
        if (at == 0 || at >= scratch.size()) return false;
        if (static_cast<int64_t>(at) < config.k) return false;
        if (static_cast<int64_t>(scratch.size() - at) < config.k) {
          return false;
        }
        Partition left, right;
        left.row_indices.assign(scratch.begin(),
                                scratch.begin() + static_cast<ptrdiff_t>(at));
        right.row_indices.assign(scratch.begin() + static_cast<ptrdiff_t>(at),
                                 scratch.end());
        work.push_back(std::move(left));
        work.push_back(std::move(right));
        return true;
      };
      split_done = try_split(split);
      if (!split_done) {
        // Boundary before the median value's run.
        size_t before = median;
        int32_t median_rank =
            rank_at(scratch[median == 0 ? 0 : median - 1], attr);
        while (before > 0 && rank_at(scratch[before - 1], attr) == median_rank) {
          --before;
        }
        split_done = try_split(before);
      }
    }
    if (!split_done) {
      done.push_back(std::move(part));
    }
  }

  // Materialize: each partition's attributes become rank-interval labels.
  MondrianResult result;
  result.num_partitions = done.size();
  std::vector<ColumnSpec> specs(table.schema().columns());
  for (size_t i = 0; i < n; ++i) {
    specs[qid.column(i)].type = DataType::kString;
  }
  result.view = Table{Schema(std::move(specs))};

  std::vector<Value> row(table.num_columns());
  for (const Partition& part : done) {
    // Interval label per attribute for the whole partition.
    std::vector<std::string> label(n);
    for (size_t i = 0; i < n; ++i) {
      int32_t lo = INT32_MAX, hi = INT32_MIN;
      for (size_t r : part.row_indices) {
        int32_t rank = rank_at(r, i);
        lo = std::min(lo, rank);
        hi = std::max(hi, rank);
      }
      const Dictionary& dict = table.dictionary(qid.column(i));
      std::string lo_label =
          dict.value(code_of_rank[i][static_cast<size_t>(lo)]).ToString();
      if (lo == hi) {
        label[i] = lo_label;
      } else {
        label[i] =
            "[" + lo_label + "-" +
            dict.value(code_of_rank[i][static_cast<size_t>(hi)]).ToString() +
            "]";
      }
    }
    for (size_t r : part.row_indices) {
      for (size_t c = 0; c < table.num_columns(); ++c) {
        row[c] = table.GetValue(r, c);
      }
      for (size_t i = 0; i < n; ++i) {
        row[qid.column(i)] = Value(label[i]);
      }
      INCOGNITO_RETURN_IF_ERROR(result.view.AppendRow(row));
    }
  }
  stats.total_seconds = timer.ElapsedSeconds();
  if (governor != nullptr) governor->ExportTrips(&stats);
  result.stats = stats;
  if (!trip.ok()) {
    return PartialResult<MondrianResult>::Partial(std::move(trip),
                                                  std::move(result));
  }
  return result;
}

}  // namespace

PartialResult<MondrianResult> RunMondrian(const Table& table,
                                          const QuasiIdentifier& qid,
                                          const AnonymizationConfig& config,
                                          const RunContext& ctx) {
  return RunMondrianImpl(table, qid, config, ctx.governor);
}

}  // namespace incognito
