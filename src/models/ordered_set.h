#ifndef INCOGNITO_MODELS_ORDERED_SET_H_
#define INCOGNITO_MODELS_ORDERED_SET_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "core/checker.h"
#include "core/quasi_identifier.h"
#include "core/run_context.h"
#include "relation/table.h"
#include "robust/partial_result.h"

namespace incognito {

/// Output of the ordered-set partition recoder.
struct OrderedSetResult {
  Table view;
  int64_t suppressed_tuples = 0;
  /// Final interval count per quasi-identifier attribute.
  std::vector<size_t> intervals_per_attribute;

  /// Refinement rounds evaluated plus governor activity (governed runs).
  AlgorithmStats stats;
};

/// Single-Dimension Ordered-Set Partitioning (paper §5.1.2, the model of
/// Bayardo-Agrawal [3]): each attribute's domain is treated as a totally
/// ordered set and recoded into disjoint covering intervals; no
/// generalization hierarchy is involved.
///
/// This implementation is a greedy heuristic instance of the model
/// (the optimal search of [3] is a set-enumeration algorithm out of this
/// paper's scope): starting from singleton intervals, it repeatedly halves
/// the partition of the attribute with the most intervals (merging
/// adjacent interval pairs) until the view satisfies k-anonymity within
/// the Datafly-style suppression budget.
///
/// `ctx` carries the execution parameters (docs/API.md): a default
/// RunContext reproduces the legacy ungoverned call. With ctx.governor
/// set, the recoder polls the governor per merge round and charges each
/// round's grouping structure against its memory budget; a budget trip
/// returns PartialResult::Partial with an EMPTY view (the intermediate
/// partitioning is not yet k-anonymous and must not be released); only the
/// stats carry the progress made. The algorithm is single-threaded:
/// ctx.num_threads and ctx.scheduling are ignored.
PartialResult<OrderedSetResult> RunOrderedSetPartition(
    const Table& table, const QuasiIdentifier& qid,
    const AnonymizationConfig& config, const RunContext& ctx = {});

/// Output of the exact univariate partitioner.
struct OptimalUnivariateResult {
  Table view;
  /// Tuple count per released interval, in domain order.
  std::vector<int64_t> interval_sizes;
  /// Σ |interval|² — the minimized discernibility of the release.
  double discernibility = 0;
};

/// Exact instance of the ordered-set partitioning model for a
/// single-attribute quasi-identifier: dynamic programming over the sorted
/// domain finds the k-anonymous consecutive-interval partition minimizing
/// the discernibility metric Σ|interval|² (for one dimension the optimal
/// partition is always interval-consecutive, so the DP is exact — the
/// one-dimensional core of what [3] searches for). O(m²) in the number of
/// distinct values; inputs beyond 5000 distinct values are rejected.
/// Requires qid.size() == 1 and total rows >= k.
Result<OptimalUnivariateResult> OptimalUnivariatePartition(
    const Table& table, const QuasiIdentifier& qid,
    const AnonymizationConfig& config);

}  // namespace incognito

#endif  // INCOGNITO_MODELS_ORDERED_SET_H_
