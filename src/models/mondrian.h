#ifndef INCOGNITO_MODELS_MONDRIAN_H_
#define INCOGNITO_MODELS_MONDRIAN_H_

#include <cstdint>

#include "common/status.h"
#include "core/checker.h"
#include "core/quasi_identifier.h"
#include "core/run_context.h"
#include "relation/table.h"
#include "robust/partial_result.h"

namespace incognito {

/// Output of the Mondrian partitioner.
struct MondrianResult {
  Table view;
  size_t num_partitions = 0;

  /// Split steps evaluated plus governor activity (governed runs).
  AlgorithmStats stats;
};

/// Multi-Dimension Ordered-Set Partitioning (paper §5.1.4) realized by the
/// greedy median-split algorithm of the authors' follow-up work
/// ("Multidimensional k-anonymity", reference [12] — later known as
/// Mondrian): the quasi-identifier value space is recursively partitioned
/// on the dimension with the widest normalized extent, splitting at the
/// median, as long as both halves keep at least k tuples. Each final
/// partition is released as a multi-dimensional interval.
///
/// Requires table.num_rows() >= k (otherwise no partitioning exists).
/// The paper cites [12] for evidence that multi-dimension models "might
/// produce better anonymizations than their single-dimension
/// counterparts"; the model-comparison bench quantifies this.
///
/// `ctx` carries the execution parameters (docs/API.md): a default
/// RunContext reproduces the legacy ungoverned call. With ctx.governor
/// set, the partitioner polls the governor once per split step; on a
/// budget trip, refinement stops and every unrefined partition is released
/// as-is — the partial view is COARSER than the full answer but still
/// k-anonymous (every partition holds >= k tuples by construction), the
/// model's graceful degradation. The algorithm is single-threaded:
/// ctx.num_threads and ctx.scheduling are ignored.
PartialResult<MondrianResult> RunMondrian(const Table& table,
                                          const QuasiIdentifier& qid,
                                          const AnonymizationConfig& config,
                                          const RunContext& ctx = {});

}  // namespace incognito

#endif  // INCOGNITO_MODELS_MONDRIAN_H_
