#include "models/koptimize.h"

#include <algorithm>
#include <unordered_map>

#include "common/stopwatch.h"
#include "common/strings.h"
#include "freq/frequency_set.h"
#include "obs/obs.h"
#include "robust/governor.h"

namespace incognito {

namespace {

struct VecHash {
  size_t operator()(const std::vector<int32_t>& v) const {
    uint64_t h = 0xcbf29ce484222325ULL;
    for (int32_t x : v) {
      h ^= static_cast<uint32_t>(x);
      h *= 0x100000001b3ULL;
    }
    return static_cast<size_t>(h);
  }
};

/// Search state shared across the set-enumeration walk.
class Search {
 public:
  Search(const QuasiIdentifier& qid, std::vector<std::vector<int32_t>> ranks,
         std::vector<int64_t> counts,
         std::vector<std::pair<size_t, size_t>> cut_points, int64_t total,
         const AnonymizationConfig& config, const KOptimizeOptions& options,
         ExecutionGovernor* governor)
      : qid_(qid),
        ranks_(std::move(ranks)),
        counts_(std::move(counts)),
        cut_points_(std::move(cut_points)),
        total_(total),
        config_(config),
        options_(options),
        governor_(governor) {
    domain_sizes_.resize(qid_.size());
    for (size_t i = 0; i < qid_.size(); ++i) {
      domain_sizes_[i] = qid_.hierarchy(i).DomainSize(0);
    }
  }

  /// Cost of the partition induced by `mask`: Σ released-class² plus
  /// |T| per suppressed tuple.
  double Cost(uint32_t mask) {
    GroupSizes(mask, &group_sizes_);
    double cost = 0;
    for (int64_t size : group_sizes_) {
      if (size >= config_.k) {
        cost += static_cast<double>(size) * size;
      } else {
        cost += static_cast<double>(size) * static_cast<double>(total_);
      }
    }
    return cost;
  }

  /// Admissible lower bound for every partition coarser than `mask`
  /// (i.e. using any subset of mask's cuts): a tuple whose subgroup under
  /// `mask` has size s ends in a class of size >= s; if released that
  /// class also has size >= k, and suppression costs |T| >= max(s, k).
  double LowerBound(uint32_t mask) {
    GroupSizes(mask, &group_sizes_);
    double bound = 0;
    for (int64_t size : group_sizes_) {
      bound += static_cast<double>(size) *
               static_cast<double>(std::max<int64_t>(size, config_.k));
    }
    return bound;
  }

  void Dfs(uint32_t mask, size_t next_index) {
    if (governor_ != nullptr && trip_.ok()) trip_ = governor_->Check();
    if (!trip_.ok()) return;
    if (options_.max_nodes > 0 && nodes_visited_ >= options_.max_nodes) {
      complete_ = false;
      return;
    }
    ++nodes_visited_;
    double cost = Cost(mask);
    if (cost < best_cost_) {
      best_cost_ = cost;
      best_mask_ = mask;
    }
    for (size_t idx = next_index; idx < cut_points_.size(); ++idx) {
      uint32_t child = mask | (1u << idx);
      // Everything reachable below the child also has all cuts > idx
      // available; bound against the fully refined mask.
      uint32_t refined = child;
      for (size_t j = idx + 1; j < cut_points_.size(); ++j) {
        refined |= 1u << j;
      }
      if (LowerBound(refined) >= best_cost_) {
        ++nodes_pruned_;
        continue;
      }
      Dfs(child, idx + 1);
      if (!trip_.ok()) return;
    }
  }

  double best_cost() const { return best_cost_; }
  uint32_t best_mask() const { return best_mask_; }
  int64_t nodes_visited() const { return nodes_visited_; }
  int64_t nodes_pruned() const { return nodes_pruned_; }
  bool complete() const { return complete_; }

  /// Non-OK when the governor tripped mid-enumeration; best_mask() then
  /// holds the best cut set proven before the trip.
  const Status& trip() const { return trip_; }

  /// Interval id of each rank of attribute `attr` under `mask`.
  void IntervalOfRank(uint32_t mask, size_t attr,
                      std::vector<int32_t>* out) const {
    out->assign(domain_sizes_[attr], 0);
    int32_t interval = 0;
    for (size_t rank = 1; rank < domain_sizes_[attr]; ++rank) {
      for (size_t c = 0; c < cut_points_.size(); ++c) {
        if ((mask & (1u << c)) && cut_points_[c].first == attr &&
            cut_points_[c].second == rank) {
          ++interval;
          break;
        }
      }
      (*out)[rank] = interval;
    }
  }

 private:
  /// Group sizes of the distinct-vector multiset under `mask`.
  void GroupSizes(uint32_t mask, std::vector<int64_t>* sizes) {
    const size_t n = qid_.size();
    std::vector<std::vector<int32_t>> interval(n);
    for (size_t i = 0; i < n; ++i) IntervalOfRank(mask, i, &interval[i]);
    std::unordered_map<std::vector<int32_t>, int64_t, VecHash> groups;
    std::vector<int32_t> key(n);
    for (size_t v = 0; v < ranks_.size(); ++v) {
      for (size_t i = 0; i < n; ++i) {
        key[i] = interval[i][static_cast<size_t>(ranks_[v][i])];
      }
      groups[key] += counts_[v];
    }
    sizes->clear();
    for (const auto& [k, size] : groups) {
      (void)k;
      sizes->push_back(size);
    }
  }

  const QuasiIdentifier& qid_;
  std::vector<std::vector<int32_t>> ranks_;  // distinct vectors, as ranks
  std::vector<int64_t> counts_;
  std::vector<std::pair<size_t, size_t>> cut_points_;
  std::vector<size_t> domain_sizes_;
  int64_t total_;
  const AnonymizationConfig& config_;
  const KOptimizeOptions& options_;
  ExecutionGovernor* governor_;
  Status trip_;

  double best_cost_ = 1e300;
  uint32_t best_mask_ = 0;
  int64_t nodes_visited_ = 0;
  int64_t nodes_pruned_ = 0;
  bool complete_ = true;
  std::vector<int64_t> group_sizes_;  // scratch
};

}  // namespace

PartialResult<KOptimizeResult> RunKOptimize(const Table& table,
                                            const QuasiIdentifier& qid,
                                            const AnonymizationConfig& config,
                                            const KOptimizeOptions& options,
                                            const RunContext& ctx) {
  INCOGNITO_SPAN("model.koptimize");
  INCOGNITO_COUNT("model.koptimize.runs");
  ExecutionGovernor* governor = ctx.governor;
  if (config.k < 1) return Status::InvalidArgument("k must be >= 1");
  const size_t n = qid.size();
  if (n == 0) {
    return Status::InvalidArgument("quasi-identifier must be non-empty");
  }

  // Candidate cut points over the sorted domains.
  std::vector<std::pair<size_t, size_t>> cut_points;
  for (size_t i = 0; i < n; ++i) {
    for (size_t rank = 1; rank < table.dictionary(qid.column(i)).size();
         ++rank) {
      cut_points.emplace_back(i, rank);
    }
  }
  if (cut_points.size() > options.max_total_cuts ||
      cut_points.size() > 31) {
    return Status::NotSupported(StringPrintf(
        "%zu candidate cut points exceed the cap of %zu; pre-bin the "
        "domains or use the greedy RunOrderedSetPartition",
        cut_points.size(), options.max_total_cuts));
  }

  // Distinct rank vectors with multiplicities.
  std::vector<std::vector<int32_t>> rank_of_code(n);
  std::vector<std::vector<int32_t>> sorted(n);
  for (size_t i = 0; i < n; ++i) {
    const Dictionary& dict = table.dictionary(qid.column(i));
    sorted[i] = dict.SortedCodes();
    rank_of_code[i].resize(dict.size());
    for (size_t rank = 0; rank < sorted[i].size(); ++rank) {
      rank_of_code[i][static_cast<size_t>(sorted[i][rank])] =
          static_cast<int32_t>(rank);
    }
  }
  std::vector<int32_t> dims(n);
  for (size_t i = 0; i < n; ++i) dims[i] = static_cast<int32_t>(i);
  Stopwatch timer;
  KOptimizeResult result;
  FrequencySet freq = FrequencySet::Compute(
      table, qid, SubsetNode(dims, std::vector<int32_t>(n, 0)));
  ++result.stats.table_scans;
  const int64_t freq_bytes = static_cast<int64_t>(freq.MemoryBytes());
  if (governor != nullptr) {
    Status charged = governor->ChargeMemory(freq_bytes);
    if (!charged.ok()) {
      result.stats.total_seconds = timer.ElapsedSeconds();
      governor->ExportTrips(&result.stats);
      return PartialResult<KOptimizeResult>::Partial(std::move(charged),
                                                     std::move(result));
    }
  }
  std::vector<std::vector<int32_t>> vectors;
  std::vector<int64_t> counts;
  freq.ForEachGroup([&](const int32_t* codes, int64_t count) {
    std::vector<int32_t> ranks(n);
    for (size_t i = 0; i < n; ++i) {
      ranks[i] = rank_of_code[i][static_cast<size_t>(codes[i])];
    }
    vectors.push_back(std::move(ranks));
    counts.push_back(count);
  });

  Search search(qid, std::move(vectors), std::move(counts), cut_points,
                static_cast<int64_t>(table.num_rows()), config, options,
                governor);
  search.Dfs(0, 0);
  if (governor != nullptr) governor->ReleaseMemory(freq_bytes);

  // Stamps search effort and governor activity into the result.
  auto finalize = [&]() {
    result.nodes_visited = search.nodes_visited();
    result.nodes_pruned = search.nodes_pruned();
    result.stats.nodes_checked = search.nodes_visited();
    result.stats.total_seconds = timer.ElapsedSeconds();
    if (governor != nullptr) governor->ExportTrips(&result.stats);
  };

  // Materializes the partition induced by `mask` (cuts, cost, released
  // view with undersized classes suppressed) into `result`.
  auto materialize = [&](uint32_t mask) -> Status {
    result.cost = search.Cost(mask);
    for (size_t c = 0; c < cut_points.size(); ++c) {
      if (mask & (1u << c)) result.cuts.push_back(cut_points[c]);
    }

    std::vector<std::vector<int32_t>> interval(n);
    std::vector<std::vector<std::string>> labels(n);
    for (size_t i = 0; i < n; ++i) {
      search.IntervalOfRank(mask, i, &interval[i]);
      const Dictionary& dict = table.dictionary(qid.column(i));
      int32_t num_intervals = interval[i].empty() ? 0 : interval[i].back() + 1;
      labels[i].resize(static_cast<size_t>(num_intervals));
      for (int32_t t = 0; t < num_intervals; ++t) {
        size_t lo = 0, hi = 0;
        bool first = true;
        for (size_t rank = 0; rank < interval[i].size(); ++rank) {
          if (interval[i][rank] == t) {
            if (first) lo = rank;
            hi = rank;
            first = false;
          }
        }
        const Value& lo_v = dict.value(sorted[i][lo]);
        const Value& hi_v = dict.value(sorted[i][hi]);
        labels[i][static_cast<size_t>(t)] =
            lo == hi ? lo_v.ToString()
                     : "[" + lo_v.ToString() + "-" + hi_v.ToString() + "]";
      }
    }

    // Per-row interval keys, suppression of undersized classes.
    std::unordered_map<std::vector<int32_t>, int64_t, VecHash> class_sizes;
    std::vector<std::vector<int32_t>> row_keys(table.num_rows(),
                                               std::vector<int32_t>(n));
    for (size_t r = 0; r < table.num_rows(); ++r) {
      for (size_t i = 0; i < n; ++i) {
        int32_t rank = rank_of_code[i][static_cast<size_t>(
            table.GetCode(r, qid.column(i)))];
        row_keys[r][i] = interval[i][static_cast<size_t>(rank)];
      }
      ++class_sizes[row_keys[r]];
    }

    std::vector<ColumnSpec> specs(table.schema().columns());
    for (size_t i = 0; i < n; ++i) {
      specs[qid.column(i)].type = DataType::kString;
    }
    result.view = Table{Schema(std::move(specs))};
    std::vector<Value> row(table.num_columns());
    for (size_t r = 0; r < table.num_rows(); ++r) {
      if (class_sizes[row_keys[r]] < config.k) {
        ++result.suppressed_tuples;
        continue;
      }
      for (size_t c = 0; c < table.num_columns(); ++c) {
        row[c] = table.GetValue(r, c);
      }
      for (size_t i = 0; i < n; ++i) {
        row[qid.column(i)] =
            Value(labels[i][static_cast<size_t>(row_keys[r][i])]);
      }
      INCOGNITO_RETURN_IF_ERROR(result.view.AppendRow(row));
    }
    return Status::OK();
  };

  if (!search.trip().ok()) {
    // Budget tripped mid-enumeration: release the best cut set proven so
    // far. Any mask induces a k-anonymous view (undersized classes are
    // suppressed), so the partial value is sound — just not provably
    // optimal. A trip before the first node leaves best_mask() == 0, the
    // fully-generalized partition.
    INCOGNITO_RETURN_IF_ERROR(materialize(search.best_mask()));
    finalize();
    return PartialResult<KOptimizeResult>::Partial(search.trip(),
                                                   std::move(result));
  }
  if (!search.complete()) {
    return Status::Internal(StringPrintf(
        "search aborted after %lld nodes (max_nodes); result would not be "
        "provably optimal",
        static_cast<long long>(search.nodes_visited())));
  }

  // Materialize the winning partition.
  INCOGNITO_RETURN_IF_ERROR(materialize(search.best_mask()));
  finalize();
  return result;
}

}  // namespace incognito
