#include "models/cell_generalization.h"

#include <unordered_map>
#include <unordered_set>
#include <vector>
#include "obs/obs.h"

namespace incognito {

namespace {

struct VecHash {
  size_t operator()(const std::vector<int32_t>& v) const {
    uint64_t h = 0xcbf29ce484222325ULL;
    for (int32_t x : v) {
      h ^= static_cast<uint32_t>(x);
      h *= 0x100000001b3ULL;
    }
    return static_cast<size_t>(h);
  }
};

}  // namespace

Result<CellGeneralizationResult> RunCellGeneralization(
    const Table& table, const QuasiIdentifier& qid,
    const AnonymizationConfig& config) {
  INCOGNITO_SPAN("model.cell_generalization");
  INCOGNITO_COUNT("model.cell_generalization.runs");
  if (config.k < 1) return Status::InvalidArgument("k must be >= 1");
  if (qid.size() == 0) {
    return Status::InvalidArgument("quasi-identifier must be non-empty");
  }
  const size_t n = qid.size();
  const size_t rows = table.num_rows();

  // Per-tuple, per-attribute generalization level (local recoding state).
  std::vector<std::vector<int32_t>> level(rows, std::vector<int32_t>(n, 0));
  std::vector<const int32_t*> cols(n);
  for (size_t i = 0; i < n; ++i) {
    cols[i] = table.ColumnCodes(qid.column(i)).data();
  }
  // The grouping key of a cell is (level, generalized code) so that values
  // at different levels never collide.
  auto cell_key = [&](size_t r, size_t i) {
    int32_t l = level[r][i];
    int32_t code =
        qid.hierarchy(i).Generalize(cols[i][r], static_cast<size_t>(l));
    return std::pair<int32_t, int32_t>(l, code);
  };

  CellGeneralizationResult result;
  std::vector<bool> violating(rows, false);
  std::vector<bool> removed(rows, false);
  while (true) {
    std::unordered_map<std::vector<int32_t>, int64_t, VecHash> groups;
    std::vector<std::vector<int32_t>> keys(rows,
                                           std::vector<int32_t>(2 * n));
    for (size_t r = 0; r < rows; ++r) {
      if (removed[r]) continue;
      for (size_t i = 0; i < n; ++i) {
        auto [l, code] = cell_key(r, i);
        keys[r][2 * i] = l;
        keys[r][2 * i + 1] = code;
      }
      ++groups[keys[r]];
    }
    int64_t below = 0;
    for (size_t r = 0; r < rows; ++r) {
      violating[r] = !removed[r] && groups[keys[r]] < config.k;
      if (violating[r]) ++below;
    }
    if (below == 0) break;

    // Attribute with the most distinct current cell values among the
    // violating tuples, among those still below their hierarchy top.
    std::vector<std::unordered_set<int64_t>> distinct(n);
    bool any_promotable = false;
    for (size_t r = 0; r < rows; ++r) {
      if (!violating[r]) continue;
      for (size_t i = 0; i < n; ++i) {
        if (static_cast<size_t>(level[r][i]) < qid.hierarchy(i).height()) {
          auto [l, code] = cell_key(r, i);
          distinct[i].insert((static_cast<int64_t>(l) << 32) |
                             static_cast<uint32_t>(code));
          any_promotable = true;
        }
      }
    }
    if (!any_promotable) {
      // Every violating cell is at the top: the tuples are mutually
      // identical ('*' everywhere) yet still fewer than k — remove them.
      for (size_t r = 0; r < rows; ++r) {
        if (violating[r]) {
          removed[r] = true;
          ++result.tuples_suppressed;
        }
      }
      break;
    }
    size_t best = 0;
    for (size_t i = 1; i < n; ++i) {
      if (distinct[i].size() > distinct[best].size()) best = i;
    }
    for (size_t r = 0; r < rows; ++r) {
      if (violating[r] &&
          static_cast<size_t>(level[r][best]) < qid.hierarchy(best).height()) {
        ++level[r][best];
        ++result.cells_generalized;
      }
    }
  }

  // Materialize the view.
  std::vector<ColumnSpec> specs(table.schema().columns());
  for (size_t i = 0; i < n; ++i) {
    specs[qid.column(i)].type = DataType::kString;
  }
  result.view = Table{Schema(std::move(specs))};
  std::vector<Value> row(table.num_columns());
  for (size_t r = 0; r < rows; ++r) {
    if (removed[r]) continue;
    for (size_t c = 0; c < table.num_columns(); ++c) {
      row[c] = table.GetValue(r, c);
    }
    for (size_t i = 0; i < n; ++i) {
      const ValueHierarchy& h = qid.hierarchy(i);
      size_t l = static_cast<size_t>(level[r][i]);
      row[qid.column(i)] =
          Value(h.LevelValue(l, h.Generalize(cols[i][r], l)).ToString());
    }
    INCOGNITO_RETURN_IF_ERROR(result.view.AppendRow(row));
  }
  return result;
}

}  // namespace incognito
