#include "models/subtree.h"

#include <algorithm>
#include <map>
#include <unordered_map>
#include <vector>

#include "common/strings.h"
#include "obs/obs.h"

namespace incognito {

namespace {

/// Per-attribute recoding state: for each base code, the level its value
/// is currently generalized to. The full-subtree invariant is maintained
/// by construction: promotions always lift every base code under the new
/// ancestor to the same level.
struct AttributeCut {
  std::vector<int32_t> level_of_base;  // indexed by base code

  /// The generalized (level, code) of a base code under this cut.
  std::pair<int32_t, int32_t> Image(const ValueHierarchy& h,
                                    int32_t base) const {
    int32_t level = level_of_base[static_cast<size_t>(base)];
    return {level, h.Generalize(base, static_cast<size_t>(level))};
  }
};

struct VecHash {
  size_t operator()(const std::vector<int32_t>& v) const {
    uint64_t h = 0xcbf29ce484222325ULL;
    for (int32_t x : v) {
      h ^= static_cast<uint32_t>(x);
      h *= 0x100000001b3ULL;
    }
    return static_cast<size_t>(h);
  }
};

}  // namespace

Result<SubtreeResult> RunGreedySubtree(const Table& table,
                                       const QuasiIdentifier& qid,
                                       const AnonymizationConfig& config) {
  INCOGNITO_SPAN("model.subtree");
  INCOGNITO_COUNT("model.subtree.runs");
  if (config.k < 1) return Status::InvalidArgument("k must be >= 1");
  if (qid.size() == 0) {
    return Status::InvalidArgument("quasi-identifier must be non-empty");
  }
  const size_t n = qid.size();
  const size_t rows = table.num_rows();
  const int64_t budget = std::max(config.k, config.max_suppressed);

  std::vector<AttributeCut> cuts(n);
  for (size_t i = 0; i < n; ++i) {
    cuts[i].level_of_base.assign(qid.hierarchy(i).DomainSize(0), 0);
  }
  std::vector<const int32_t*> cols(n);
  for (size_t i = 0; i < n; ++i) {
    cols[i] = table.ColumnCodes(qid.column(i)).data();
  }

  SubtreeResult result;
  // Interned (attr, level, code) triple per cell; group key = the n ids.
  // Recomputed each round (rounds are few: every promotion strictly
  // coarsens one attribute).
  std::vector<bool> violating(rows, false);
  while (true) {
    // Group rows by their current generalized images.
    std::unordered_map<std::vector<int32_t>, int64_t, VecHash> groups;
    std::vector<std::vector<int32_t>> keys(rows,
                                           std::vector<int32_t>(n * 2));
    for (size_t r = 0; r < rows; ++r) {
      std::vector<int32_t>& key = keys[r];
      for (size_t i = 0; i < n; ++i) {
        auto [level, code] = cuts[i].Image(qid.hierarchy(i), cols[i][r]);
        key[2 * i] = level;
        key[2 * i + 1] = code;
      }
      ++groups[key];
    }
    int64_t below = 0;
    for (size_t r = 0; r < rows; ++r) {
      violating[r] = groups[keys[r]] < config.k;
      if (violating[r]) ++below;
    }
    if (below <= budget) break;

    // Candidate promotions: for each violating tuple and attribute, lift
    // the subtree rooted at the parent of the tuple's current image.
    // Score = number of violating tuples whose image lies under that
    // parent. Pick the best-scoring candidate.
    std::map<std::tuple<size_t, int32_t, int32_t>, int64_t> scores;
    for (size_t r = 0; r < rows; ++r) {
      if (!violating[r]) continue;
      for (size_t i = 0; i < n; ++i) {
        const ValueHierarchy& h = qid.hierarchy(i);
        auto [level, code] = cuts[i].Image(h, cols[i][r]);
        if (static_cast<size_t>(level) >= h.height()) continue;
        int32_t parent = h.Parent(static_cast<size_t>(level), code);
        ++scores[{i, level + 1, parent}];
      }
    }
    if (scores.empty()) break;  // nothing left to generalize
    auto best = std::max_element(
        scores.begin(), scores.end(),
        [](const auto& a, const auto& b) { return a.second < b.second; });
    auto [attr, new_level, parent] = best->first;

    // Apply the promotion while preserving the full-subtree invariant: if
    // some base under the new ancestor is already generalized higher, the
    // two subtrees overlap, so the lift target must rise to cover it —
    // iterate to a fixpoint, then move the whole covered subtree to the
    // target level.
    const ValueHierarchy& h = qid.hierarchy(attr);
    int32_t target_level = new_level;
    int32_t target_code = parent;
    while (true) {
      int32_t max_level = target_level;
      for (size_t base = 0; base < cuts[attr].level_of_base.size(); ++base) {
        if (h.Generalize(static_cast<int32_t>(base),
                         static_cast<size_t>(target_level)) == target_code) {
          max_level = std::max(max_level, cuts[attr].level_of_base[base]);
        }
      }
      if (max_level == target_level) break;
      target_code = h.GeneralizeFrom(static_cast<size_t>(target_level),
                                     target_code,
                                     static_cast<size_t>(max_level));
      target_level = max_level;
    }
    for (size_t base = 0; base < cuts[attr].level_of_base.size(); ++base) {
      if (h.Generalize(static_cast<int32_t>(base),
                       static_cast<size_t>(target_level)) == target_code) {
        cuts[attr].level_of_base[base] = target_level;
      }
    }
    ++result.promotions;
  }

  // Materialize the view: violating leftovers suppressed, QID columns
  // stringified with their generalized labels.
  std::vector<ColumnSpec> specs(table.schema().columns());
  for (size_t i = 0; i < n; ++i) {
    specs[qid.column(i)].type = DataType::kString;
  }
  result.view = Table{Schema(std::move(specs))};
  std::vector<Value> row(table.num_columns());
  for (size_t r = 0; r < rows; ++r) {
    if (violating[r]) {
      ++result.suppressed_tuples;
      continue;
    }
    for (size_t c = 0; c < table.num_columns(); ++c) {
      row[c] = table.GetValue(r, c);
    }
    for (size_t i = 0; i < n; ++i) {
      const ValueHierarchy& h = qid.hierarchy(i);
      auto [level, code] = cuts[i].Image(h, cols[i][r]);
      row[qid.column(i)] =
          Value(h.LevelValue(static_cast<size_t>(level), code).ToString());
    }
    INCOGNITO_RETURN_IF_ERROR(result.view.AppendRow(row));
  }
  return result;
}

}  // namespace incognito
