#ifndef INCOGNITO_MODELS_KOPTIMIZE_H_
#define INCOGNITO_MODELS_KOPTIMIZE_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "core/checker.h"
#include "core/quasi_identifier.h"
#include "core/run_context.h"
#include "relation/table.h"
#include "robust/partial_result.h"

namespace incognito {

/// Options for the optimal set-enumeration search.
struct KOptimizeOptions {
  /// Hard cap on the total number of candidate cut points (the search
  /// space is 2^cuts; the branch-and-bound prunes most of it, but inputs
  /// beyond this are rejected rather than risked).
  size_t max_total_cuts = 24;
  /// Safety valve: abort with ResourceExhausted after this many search
  /// nodes (0 = unlimited).
  int64_t max_nodes = 5'000'000;
};

/// Output of the optimal search.
struct KOptimizeResult {
  Table view;
  /// Chosen cut points as (attribute, rank boundary) pairs — a cut at
  /// rank r splits between sorted domain positions r-1 and r.
  std::vector<std::pair<size_t, size_t>> cuts;
  /// Minimized cost: Σ|class|² over released classes + |T| per suppressed
  /// tuple (the discernibility metric with suppression penalty of [3]).
  double cost = 0;
  int64_t suppressed_tuples = 0;
  /// Search effort: set-enumeration nodes visited / pruned by the bound.
  int64_t nodes_visited = 0;
  int64_t nodes_pruned = 0;

  /// Timing plus governor activity (governed runs).
  AlgorithmStats stats;
};

/// Optimal Single-Dimension Ordered-Set Partitioning in the style of
/// Bayardo-Agrawal's k-Optimize (paper reference [3], the "top-down
/// set-enumeration approach for finding an anonymization that is optimal
/// according to a given cost metric" of §6): the anonymization is a set of
/// cut points over the sorted per-attribute domains; the search walks the
/// set-enumeration tree from the empty cut set (fully generalized) adding
/// cuts depth-first, pruning subtrees with an admissible lower bound —
/// under any refinement, a tuple whose fully-refined subgroup has size s
/// costs at least max(s, k) if released and |T| if suppressed, so
/// LB = Σ_subgroups s·max(s, k) (undersized subgroups may merge upward,
/// still ≥ k per tuple).
///
/// Undersized classes are suppressed at |T| penalty per tuple (never
/// infeasible). Exact but exponential in the number of cuts: intended for
/// small/pre-binned domains; see KOptimizeOptions::max_total_cuts.
///
/// `ctx` carries the execution parameters (docs/API.md): a default
/// RunContext reproduces the ungoverned call. With ctx.governor set, the
/// search polls the governor at every set-enumeration node and charges the
/// initial frequency set against its memory budget. A budget trip stops
/// the enumeration and materializes the BEST CUT SET FOUND SO FAR: because
/// every cut-set mask induces a k-anonymous release (undersized classes
/// are suppressed), the partial view is sound — it is just not provably
/// optimal, and cost/cuts reflect the best-so-far mask rather than the
/// optimum. The options.max_nodes safety valve is unchanged and remains a
/// hard Internal error (an un-governed abort proves nothing). The
/// algorithm is single-threaded: ctx.num_threads and ctx.scheduling are
/// ignored.
PartialResult<KOptimizeResult> RunKOptimize(const Table& table,
                                            const QuasiIdentifier& qid,
                                            const AnonymizationConfig& config,
                                            const KOptimizeOptions& options = {},
                                            const RunContext& ctx = {});

}  // namespace incognito

#endif  // INCOGNITO_MODELS_KOPTIMIZE_H_
