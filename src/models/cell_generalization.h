#ifndef INCOGNITO_MODELS_CELL_GENERALIZATION_H_
#define INCOGNITO_MODELS_CELL_GENERALIZATION_H_

#include <cstdint>

#include "common/status.h"
#include "core/checker.h"
#include "core/quasi_identifier.h"
#include "relation/table.h"

namespace incognito {

/// Output of the cell-generalization recoder.
struct CellGeneralizationResult {
  Table view;
  int64_t cells_generalized = 0;  ///< single-level cell promotions applied
  int64_t tuples_suppressed = 0;  ///< tuples removed after full generalization
};

/// Local recoding by Cell Generalization (paper §5.2, [17]): individual
/// cells of individual tuples are replaced by ancestors from the value
/// generalization hierarchy — the finest-grained hierarchy-based model in
/// the taxonomy. A generalized cell is its own value for grouping (as
/// with cell suppression, "5371*" matches only "5371*").
///
/// Greedy heuristic: while undersized groups remain, promote — in every
/// violating tuple — the attribute with the most distinct current values
/// among the violating tuples by one hierarchy level. Tuples still
/// violating with every cell at the top are removed.
Result<CellGeneralizationResult> RunCellGeneralization(
    const Table& table, const QuasiIdentifier& qid,
    const AnonymizationConfig& config);

}  // namespace incognito

#endif  // INCOGNITO_MODELS_CELL_GENERALIZATION_H_
