#ifndef INCOGNITO_OBS_COUNTERS_H_
#define INCOGNITO_OBS_COUNTERS_H_

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

namespace incognito {
namespace obs {

/// A named monotonic counter. Increments are lock-free; pointers returned
/// by CounterRegistry::GetCounter stay valid for the registry's lifetime,
/// so call sites cache them (the INCOGNITO_COUNT macros do this with a
/// function-local static).
class Counter {
 public:
  void Add(int64_t delta) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  void Increment() { Add(1); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  const std::string& name() const { return name_; }

 private:
  friend class CounterRegistry;
  explicit Counter(std::string name) : name_(std::move(name)) {}
  std::string name_;
  std::atomic<int64_t> value_{0};
};

/// A named double-valued gauge. Supports both Set (last-write-wins) and
/// Add (accumulating, e.g. per-phase seconds).
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  void Add(double delta) {
    double cur = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(cur, cur + delta,
                                         std::memory_order_relaxed)) {
    }
  }
  double value() const { return value_.load(std::memory_order_relaxed); }
  const std::string& name() const { return name_; }

 private:
  friend class CounterRegistry;
  explicit Gauge(std::string name) : name_(std::move(name)) {}
  std::string name_;
  std::atomic<double> value_{0};
};

/// A point-in-time copy of one histogram's state. Percentiles are derived
/// on demand from the log-binned bucket counts (geometric interpolation
/// inside the crossing bucket), so two snapshots can be subtracted
/// bucket-wise and still yield meaningful per-run percentiles.
struct HistogramSnapshot {
  static constexpr int kNumBuckets = 64;

  int64_t count = 0;
  int64_t sum_ns = 0;
  int64_t max_ns = 0;
  std::array<int64_t, kNumBuckets> buckets{};

  /// The value (seconds) at percentile `p` in [0, 100]. Log-binning means
  /// the answer is exact to within one power-of-two bucket; the estimate is
  /// interpolated inside the bucket and clamped to the observed max.
  double PercentileSeconds(double p) const;
  double MeanSeconds() const {
    return count > 0 ? static_cast<double>(sum_ns) / count * 1e-9 : 0.0;
  }
  double MaxSeconds() const { return static_cast<double>(max_ns) * 1e-9; }
  double SumSeconds() const { return static_cast<double>(sum_ns) * 1e-9; }

  /// This snapshot minus `before`, bucket-wise. `max_ns` is not
  /// subtractable and keeps this (cumulative) snapshot's value — an upper
  /// bound on the interval's true max.
  HistogramSnapshot DeltaSince(const HistogramSnapshot& before) const;
};

/// A named lock-free latency histogram with logarithmic (power-of-two
/// nanosecond) buckets: bucket 0 holds durations of < 1ns, bucket b holds
/// [2^(b-1), 2^b) ns. Recording is three relaxed atomic adds plus a CAS
/// max — cheap enough for per-task scheduler paths.
class Histogram {
 public:
  void RecordNanos(int64_t ns) {
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_ns_.fetch_add(ns, std::memory_order_relaxed);
    buckets_[BucketFor(ns)].fetch_add(1, std::memory_order_relaxed);
    int64_t max = max_ns_.load(std::memory_order_relaxed);
    while (ns > max && !max_ns_.compare_exchange_weak(
                           max, ns, std::memory_order_relaxed)) {
    }
  }
  void RecordSeconds(double seconds) {
    RecordNanos(static_cast<int64_t>(seconds * 1e9));
  }

  HistogramSnapshot Snapshot() const;
  const std::string& name() const { return name_; }

  static int BucketFor(int64_t ns) {
    if (ns <= 0) return 0;
    int bucket = 0;
    for (uint64_t v = static_cast<uint64_t>(ns); v != 0; v >>= 1) ++bucket;
    return bucket < HistogramSnapshot::kNumBuckets
               ? bucket
               : HistogramSnapshot::kNumBuckets - 1;
  }

 private:
  friend class CounterRegistry;
  explicit Histogram(std::string name) : name_(std::move(name)) {}
  std::string name_;
  std::atomic<int64_t> count_{0};
  std::atomic<int64_t> sum_ns_{0};
  std::atomic<int64_t> max_ns_{0};
  std::array<std::atomic<int64_t>, HistogramSnapshot::kNumBuckets> buckets_{};
};

/// Process-wide registry of named counters, gauges, and histograms.
/// Registration takes a mutex; reads and increments through the returned
/// handles are lock-free. Values are cumulative for the process — use
/// MetricsSnapshot deltas to isolate one run's contribution.
class CounterRegistry {
 public:
  /// The registry the instrumentation macros record into.
  static CounterRegistry& Global();

  /// Returns the counter/gauge/histogram named `name`, creating it on
  /// first use. The returned pointer is stable for the registry's
  /// lifetime.
  Counter* GetCounter(std::string_view name);
  Gauge* GetGauge(std::string_view name);
  Histogram* GetHistogram(std::string_view name);

  std::map<std::string, int64_t> CounterSnapshot() const;
  std::map<std::string, double> GaugeSnapshot() const;
  std::map<std::string, HistogramSnapshot> HistogramSnapshots() const;

  /// Zeroes every value. Handles stay valid.
  void Reset();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

/// A point-in-time copy of every counter, gauge, and histogram; subtract
/// two snapshots to attribute costs to one measured region (the bench
/// harness does this per algorithm run).
struct MetricsSnapshot {
  std::map<std::string, int64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramSnapshot> histograms;

  static MetricsSnapshot Take(
      const CounterRegistry& registry = CounterRegistry::Global());

  /// Returns this snapshot minus `before`, dropping entries whose delta is
  /// zero (gauge deltas below 1ns of seconds are treated as zero;
  /// histograms with a zero count delta are dropped).
  MetricsSnapshot DeltaSince(const MetricsSnapshot& before) const;
};

/// RAII accumulator: adds the scope's elapsed seconds to a gauge. Used via
/// INCOGNITO_PHASE_TIMER, which caches the gauge handle per call site.
class ScopedPhaseTimer {
 public:
  explicit ScopedPhaseTimer(Gauge* gauge)
      : gauge_(gauge), start_(std::chrono::steady_clock::now()) {}
  ~ScopedPhaseTimer() {
    gauge_->Add(std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - start_)
                    .count());
  }
  ScopedPhaseTimer(const ScopedPhaseTimer&) = delete;
  ScopedPhaseTimer& operator=(const ScopedPhaseTimer&) = delete;

 private:
  Gauge* gauge_;
  std::chrono::steady_clock::time_point start_;
};

/// RAII timer: records the scope's elapsed nanoseconds into a histogram.
/// Used via INCOGNITO_HIST_TIMER, which caches the handle per call site.
class ScopedHistogramTimer {
 public:
  explicit ScopedHistogramTimer(Histogram* hist)
      : hist_(hist), start_(std::chrono::steady_clock::now()) {}
  ~ScopedHistogramTimer() {
    hist_->RecordNanos(std::chrono::duration_cast<std::chrono::nanoseconds>(
                           std::chrono::steady_clock::now() - start_)
                           .count());
  }
  ScopedHistogramTimer(const ScopedHistogramTimer&) = delete;
  ScopedHistogramTimer& operator=(const ScopedHistogramTimer&) = delete;

 private:
  Histogram* hist_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace obs
}  // namespace incognito

#endif  // INCOGNITO_OBS_COUNTERS_H_
