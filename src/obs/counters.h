#ifndef INCOGNITO_OBS_COUNTERS_H_
#define INCOGNITO_OBS_COUNTERS_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

namespace incognito {
namespace obs {

/// A named monotonic counter. Increments are lock-free; pointers returned
/// by CounterRegistry::GetCounter stay valid for the registry's lifetime,
/// so call sites cache them (the INCOGNITO_COUNT macros do this with a
/// function-local static).
class Counter {
 public:
  void Add(int64_t delta) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  void Increment() { Add(1); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  const std::string& name() const { return name_; }

 private:
  friend class CounterRegistry;
  explicit Counter(std::string name) : name_(std::move(name)) {}
  std::string name_;
  std::atomic<int64_t> value_{0};
};

/// A named double-valued gauge. Supports both Set (last-write-wins) and
/// Add (accumulating, e.g. per-phase seconds).
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  void Add(double delta) {
    double cur = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(cur, cur + delta,
                                         std::memory_order_relaxed)) {
    }
  }
  double value() const { return value_.load(std::memory_order_relaxed); }
  const std::string& name() const { return name_; }

 private:
  friend class CounterRegistry;
  explicit Gauge(std::string name) : name_(std::move(name)) {}
  std::string name_;
  std::atomic<double> value_{0};
};

/// Process-wide registry of named counters and gauges. Registration takes
/// a mutex; reads and increments through the returned handles are
/// lock-free. Values are cumulative for the process — use MetricsSnapshot
/// deltas to isolate one run's contribution.
class CounterRegistry {
 public:
  /// The registry the instrumentation macros record into.
  static CounterRegistry& Global();

  /// Returns the counter/gauge named `name`, creating it on first use.
  /// The returned pointer is stable for the registry's lifetime.
  Counter* GetCounter(std::string_view name);
  Gauge* GetGauge(std::string_view name);

  std::map<std::string, int64_t> CounterSnapshot() const;
  std::map<std::string, double> GaugeSnapshot() const;

  /// Zeroes every value. Handles stay valid.
  void Reset();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
};

/// A point-in-time copy of every counter and gauge; subtract two snapshots
/// to attribute costs to one measured region (the bench harness does this
/// per algorithm run).
struct MetricsSnapshot {
  std::map<std::string, int64_t> counters;
  std::map<std::string, double> gauges;

  static MetricsSnapshot Take(
      const CounterRegistry& registry = CounterRegistry::Global());

  /// Returns this snapshot minus `before`, dropping entries whose delta is
  /// zero (gauge deltas below 1ns of seconds are treated as zero).
  MetricsSnapshot DeltaSince(const MetricsSnapshot& before) const;
};

/// RAII accumulator: adds the scope's elapsed seconds to a gauge. Used via
/// INCOGNITO_PHASE_TIMER, which caches the gauge handle per call site.
class ScopedPhaseTimer {
 public:
  explicit ScopedPhaseTimer(Gauge* gauge)
      : gauge_(gauge), start_(std::chrono::steady_clock::now()) {}
  ~ScopedPhaseTimer() {
    gauge_->Add(std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - start_)
                    .count());
  }
  ScopedPhaseTimer(const ScopedPhaseTimer&) = delete;
  ScopedPhaseTimer& operator=(const ScopedPhaseTimer&) = delete;

 private:
  Gauge* gauge_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace obs
}  // namespace incognito

#endif  // INCOGNITO_OBS_COUNTERS_H_
