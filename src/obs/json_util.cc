#include "obs/json_util.h"

#include <cmath>

#include "common/strings.h"

namespace incognito {
namespace obs {

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StringPrintf("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string JsonString(std::string_view s) {
  return "\"" + JsonEscape(s) + "\"";
}

std::string JsonDouble(double v) {
  if (!std::isfinite(v)) return "0";
  std::string out = StringPrintf("%.17g", v);
  return out;
}

namespace {

/// Cursor over the text being validated.
struct Parser {
  std::string_view text;
  size_t pos = 0;
  std::string error;

  bool Fail(const std::string& what) {
    if (error.empty()) {
      error = StringPrintf("at byte %zu: %s", pos, what.c_str());
    }
    return false;
  }

  void SkipWs() {
    while (pos < text.size() &&
           (text[pos] == ' ' || text[pos] == '\t' || text[pos] == '\n' ||
            text[pos] == '\r')) {
      ++pos;
    }
  }

  bool Literal(std::string_view lit) {
    if (text.substr(pos, lit.size()) != lit) {
      return Fail("expected '" + std::string(lit) + "'");
    }
    pos += lit.size();
    return true;
  }

  bool String() {
    if (pos >= text.size() || text[pos] != '"') return Fail("expected string");
    ++pos;
    while (pos < text.size()) {
      char c = text[pos];
      if (c == '"') {
        ++pos;
        return true;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        return Fail("raw control character in string");
      }
      if (c == '\\') {
        ++pos;
        if (pos >= text.size()) return Fail("truncated escape");
        char e = text[pos];
        if (e == 'u') {
          for (int i = 1; i <= 4; ++i) {
            if (pos + i >= text.size() || !isxdigit(text[pos + i])) {
              return Fail("bad \\u escape");
            }
          }
          pos += 4;
        } else if (e != '"' && e != '\\' && e != '/' && e != 'b' &&
                   e != 'f' && e != 'n' && e != 'r' && e != 't') {
          return Fail("bad escape character");
        }
      }
      ++pos;
    }
    return Fail("unterminated string");
  }

  bool Number() {
    size_t start = pos;
    if (pos < text.size() && text[pos] == '-') ++pos;
    size_t digits = 0;
    while (pos < text.size() && isdigit(text[pos])) ++pos, ++digits;
    if (digits == 0) return Fail("expected digits");
    if (pos < text.size() && text[pos] == '.') {
      ++pos;
      digits = 0;
      while (pos < text.size() && isdigit(text[pos])) ++pos, ++digits;
      if (digits == 0) return Fail("expected fraction digits");
    }
    if (pos < text.size() && (text[pos] == 'e' || text[pos] == 'E')) {
      ++pos;
      if (pos < text.size() && (text[pos] == '+' || text[pos] == '-')) ++pos;
      digits = 0;
      while (pos < text.size() && isdigit(text[pos])) ++pos, ++digits;
      if (digits == 0) return Fail("expected exponent digits");
    }
    return pos > start;
  }

  bool Value(int depth) {
    if (depth > 128) return Fail("nesting too deep");
    SkipWs();
    if (pos >= text.size()) return Fail("expected value");
    char c = text[pos];
    if (c == '{') return Object(depth);
    if (c == '[') return Array(depth);
    if (c == '"') return String();
    if (c == 't') return Literal("true");
    if (c == 'f') return Literal("false");
    if (c == 'n') return Literal("null");
    if (c == '-' || isdigit(c)) return Number();
    return Fail("unexpected character");
  }

  bool Object(int depth) {
    ++pos;  // '{'
    SkipWs();
    if (pos < text.size() && text[pos] == '}') {
      ++pos;
      return true;
    }
    while (true) {
      SkipWs();
      if (!String()) return false;
      SkipWs();
      if (pos >= text.size() || text[pos] != ':') return Fail("expected ':'");
      ++pos;
      if (!Value(depth + 1)) return false;
      SkipWs();
      if (pos < text.size() && text[pos] == ',') {
        ++pos;
        continue;
      }
      if (pos < text.size() && text[pos] == '}') {
        ++pos;
        return true;
      }
      return Fail("expected ',' or '}'");
    }
  }

  bool Array(int depth) {
    ++pos;  // '['
    SkipWs();
    if (pos < text.size() && text[pos] == ']') {
      ++pos;
      return true;
    }
    while (true) {
      if (!Value(depth + 1)) return false;
      SkipWs();
      if (pos < text.size() && text[pos] == ',') {
        ++pos;
        continue;
      }
      if (pos < text.size() && text[pos] == ']') {
        ++pos;
        return true;
      }
      return Fail("expected ',' or ']'");
    }
  }
};

}  // namespace

bool IsValidJson(std::string_view text, std::string* error) {
  Parser p;
  p.text = text;
  bool ok = p.Value(0);
  if (ok) {
    p.SkipWs();
    if (p.pos != text.size()) {
      ok = p.Fail("trailing garbage");
    }
  }
  if (!ok && error != nullptr) *error = p.error;
  return ok;
}

}  // namespace obs
}  // namespace incognito
