#include "obs/json_util.h"

#include <cctype>
#include <cmath>
#include <cstdlib>

#include "common/strings.h"

namespace incognito {
namespace obs {

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StringPrintf("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string JsonString(std::string_view s) {
  return "\"" + JsonEscape(s) + "\"";
}

std::string JsonDouble(double v) {
  if (!std::isfinite(v)) return "0";
  std::string out = StringPrintf("%.17g", v);
  return out;
}

namespace {

/// Cursor over the text being validated.
struct Parser {
  std::string_view text;
  size_t pos = 0;
  std::string error;

  bool Fail(const std::string& what) {
    if (error.empty()) {
      error = StringPrintf("at byte %zu: %s", pos, what.c_str());
    }
    return false;
  }

  void SkipWs() {
    while (pos < text.size() &&
           (text[pos] == ' ' || text[pos] == '\t' || text[pos] == '\n' ||
            text[pos] == '\r')) {
      ++pos;
    }
  }

  bool Literal(std::string_view lit) {
    if (text.substr(pos, lit.size()) != lit) {
      return Fail("expected '" + std::string(lit) + "'");
    }
    pos += lit.size();
    return true;
  }

  /// Validates a string literal; when `out` is non-null, also decodes the
  /// escapes into it.
  bool String(std::string* out = nullptr) {
    if (pos >= text.size() || text[pos] != '"') return Fail("expected string");
    ++pos;
    while (pos < text.size()) {
      char c = text[pos];
      if (c == '"') {
        ++pos;
        return true;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        return Fail("raw control character in string");
      }
      if (c == '\\') {
        ++pos;
        if (pos >= text.size()) return Fail("truncated escape");
        char e = text[pos];
        if (e == 'u') {
          unsigned code = 0;
          for (int i = 1; i <= 4; ++i) {
            if (pos + i >= text.size() || !isxdigit(text[pos + i])) {
              return Fail("bad \\u escape");
            }
            char h = text[pos + i];
            code = code * 16 +
                   static_cast<unsigned>(isdigit(h) ? h - '0'
                                                    : tolower(h) - 'a' + 10);
          }
          pos += 4;
          if (out != nullptr) {
            // UTF-8 encode (BMP only; surrogate pairs come through as two
            // replacement-range sequences, good enough for diagnostics).
            if (code < 0x80) {
              out->push_back(static_cast<char>(code));
            } else if (code < 0x800) {
              out->push_back(static_cast<char>(0xC0 | (code >> 6)));
              out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
            } else {
              out->push_back(static_cast<char>(0xE0 | (code >> 12)));
              out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
              out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
            }
          }
        } else if (e == '"' || e == '\\' || e == '/' || e == 'b' ||
                   e == 'f' || e == 'n' || e == 'r' || e == 't') {
          if (out != nullptr) {
            switch (e) {
              case 'b': out->push_back('\b'); break;
              case 'f': out->push_back('\f'); break;
              case 'n': out->push_back('\n'); break;
              case 'r': out->push_back('\r'); break;
              case 't': out->push_back('\t'); break;
              default: out->push_back(e);
            }
          }
        } else {
          return Fail("bad escape character");
        }
      } else if (out != nullptr) {
        out->push_back(c);
      }
      ++pos;
    }
    return Fail("unterminated string");
  }

  bool Number(double* out = nullptr) {
    size_t start = pos;
    if (pos < text.size() && text[pos] == '-') ++pos;
    size_t digits = 0;
    while (pos < text.size() && isdigit(text[pos])) ++pos, ++digits;
    if (digits == 0) return Fail("expected digits");
    if (pos < text.size() && text[pos] == '.') {
      ++pos;
      digits = 0;
      while (pos < text.size() && isdigit(text[pos])) ++pos, ++digits;
      if (digits == 0) return Fail("expected fraction digits");
    }
    if (pos < text.size() && (text[pos] == 'e' || text[pos] == 'E')) {
      ++pos;
      if (pos < text.size() && (text[pos] == '+' || text[pos] == '-')) ++pos;
      digits = 0;
      while (pos < text.size() && isdigit(text[pos])) ++pos, ++digits;
      if (digits == 0) return Fail("expected exponent digits");
    }
    if (out != nullptr) {
      *out = strtod(std::string(text.substr(start, pos - start)).c_str(),
                    nullptr);
    }
    return pos > start;
  }

  bool Value(int depth, JsonValue* out = nullptr) {
    if (depth > 128) return Fail("nesting too deep");
    SkipWs();
    if (pos >= text.size()) return Fail("expected value");
    char c = text[pos];
    if (c == '{') {
      if (out != nullptr) out->type = JsonValue::Type::kObject;
      return Object(depth, out);
    }
    if (c == '[') {
      if (out != nullptr) out->type = JsonValue::Type::kArray;
      return Array(depth, out);
    }
    if (c == '"') {
      if (out != nullptr) out->type = JsonValue::Type::kString;
      return String(out != nullptr ? &out->str : nullptr);
    }
    if (c == 't') {
      if (out != nullptr) {
        out->type = JsonValue::Type::kBool;
        out->b = true;
      }
      return Literal("true");
    }
    if (c == 'f') {
      if (out != nullptr) {
        out->type = JsonValue::Type::kBool;
        out->b = false;
      }
      return Literal("false");
    }
    if (c == 'n') {
      if (out != nullptr) out->type = JsonValue::Type::kNull;
      return Literal("null");
    }
    if (c == '-' || isdigit(c)) {
      if (out != nullptr) out->type = JsonValue::Type::kNumber;
      return Number(out != nullptr ? &out->num : nullptr);
    }
    return Fail("unexpected character");
  }

  bool Object(int depth, JsonValue* out = nullptr) {
    ++pos;  // '{'
    SkipWs();
    if (pos < text.size() && text[pos] == '}') {
      ++pos;
      return true;
    }
    while (true) {
      SkipWs();
      std::string key;
      if (!String(out != nullptr ? &key : nullptr)) return false;
      SkipWs();
      if (pos >= text.size() || text[pos] != ':') return Fail("expected ':'");
      ++pos;
      JsonValue* member =
          out != nullptr ? &out->object[std::move(key)] : nullptr;
      if (!Value(depth + 1, member)) return false;
      SkipWs();
      if (pos < text.size() && text[pos] == ',') {
        ++pos;
        continue;
      }
      if (pos < text.size() && text[pos] == '}') {
        ++pos;
        return true;
      }
      return Fail("expected ',' or '}'");
    }
  }

  bool Array(int depth, JsonValue* out = nullptr) {
    ++pos;  // '['
    SkipWs();
    if (pos < text.size() && text[pos] == ']') {
      ++pos;
      return true;
    }
    while (true) {
      JsonValue* element = nullptr;
      if (out != nullptr) {
        out->array.emplace_back();
        element = &out->array.back();
      }
      if (!Value(depth + 1, element)) return false;
      SkipWs();
      if (pos < text.size() && text[pos] == ',') {
        ++pos;
        continue;
      }
      if (pos < text.size() && text[pos] == ']') {
        ++pos;
        return true;
      }
      return Fail("expected ',' or ']'");
    }
  }
};

}  // namespace

bool IsValidJson(std::string_view text, std::string* error) {
  Parser p;
  p.text = text;
  bool ok = p.Value(0);
  if (ok) {
    p.SkipWs();
    if (p.pos != text.size()) {
      ok = p.Fail("trailing garbage");
    }
  }
  if (!ok && error != nullptr) *error = p.error;
  return ok;
}

bool ParseJson(std::string_view text, JsonValue* out, std::string* error) {
  *out = JsonValue();
  Parser p;
  p.text = text;
  bool ok = p.Value(0, out);
  if (ok) {
    p.SkipWs();
    if (p.pos != text.size()) {
      ok = p.Fail("trailing garbage");
    }
  }
  if (!ok && error != nullptr) *error = p.error;
  return ok;
}

}  // namespace obs
}  // namespace incognito
