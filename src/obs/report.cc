#include "obs/report.h"

#include <cstdio>

#include "common/strings.h"
#include "core/checker.h"
#include "obs/json_util.h"

namespace incognito {
namespace obs {

RunReport::RunReport(std::string tool, std::string command)
    : tool_(std::move(tool)), command_(std::move(command)) {}

void RunReport::SetString(const std::string& key, std::string value) {
  FieldValue v;
  v.kind = FieldValue::Kind::kString;
  v.s = std::move(value);
  fields_[key] = std::move(v);
}

void RunReport::SetInt(const std::string& key, int64_t value) {
  FieldValue v;
  v.kind = FieldValue::Kind::kInt;
  v.i = value;
  fields_[key] = std::move(v);
}

void RunReport::SetDouble(const std::string& key, double value) {
  FieldValue v;
  v.kind = FieldValue::Kind::kDouble;
  v.d = value;
  fields_[key] = std::move(v);
}

void RunReport::SetBool(const std::string& key, bool value) {
  FieldValue v;
  v.kind = FieldValue::Kind::kBool;
  v.b = value;
  fields_[key] = std::move(v);
}

void RunReport::SetDoubleList(const std::string& key,
                              std::vector<double> values) {
  FieldValue v;
  v.kind = FieldValue::Kind::kDoubleList;
  v.list = std::move(values);
  fields_[key] = std::move(v);
}

void RunReport::AddCounters(const CounterRegistry& registry) {
  AddMetrics(MetricsSnapshot::Take(registry));
}

void RunReport::AddMetrics(const MetricsSnapshot& snapshot) {
  for (const auto& [name, value] : snapshot.counters) counters_[name] = value;
  for (const auto& [name, value] : snapshot.gauges) gauges_[name] = value;
  for (const auto& [name, value] : snapshot.histograms) {
    histograms_[name] = value;
    has_histograms_ = true;
  }
  has_counters_ = true;
}

void RunReport::AddSpans(const TraceRecorder& recorder) {
  for (const auto& [name, rollup] : recorder.RollupByName()) {
    spans_[name] = rollup;
  }
  has_spans_ = true;
}

namespace {

template <typename Map, typename Fn>
void AppendMap(std::string* out, const char* section, const Map& map,
               Fn&& value_to_json, bool* first_section) {
  if (!*first_section) *out += ",\n";
  *first_section = false;
  *out += StringPrintf("  %s: {", JsonString(section).c_str());
  bool first = true;
  for (const auto& [key, value] : map) {
    *out += first ? "\n" : ",\n";
    first = false;
    *out += StringPrintf("    %s: %s", JsonString(key).c_str(),
                         value_to_json(value).c_str());
  }
  *out += first ? "}" : "\n  }";
}

}  // namespace

std::string RunReport::ToJson() const {
  std::string out = "{\n";
  out += StringPrintf("  \"schema_version\": %d,\n", kSchemaVersion);
  out += StringPrintf("  \"tool\": %s,\n", JsonString(tool_).c_str());
  out += StringPrintf("  \"command\": %s", JsonString(command_).c_str());

  bool first_section = false;  // the header keys above came first
  AppendMap(&out, "fields", fields_,
            [](const FieldValue& v) -> std::string {
              switch (v.kind) {
                case FieldValue::Kind::kString:
                  return JsonString(v.s);
                case FieldValue::Kind::kInt:
                  return StringPrintf("%lld", static_cast<long long>(v.i));
                case FieldValue::Kind::kDouble:
                  return JsonDouble(v.d);
                case FieldValue::Kind::kBool:
                  return v.b ? "true" : "false";
                case FieldValue::Kind::kDoubleList: {
                  std::string out = "[";
                  for (size_t i = 0; i < v.list.size(); ++i) {
                    if (i > 0) out += ", ";
                    out += JsonDouble(v.list[i]);
                  }
                  out += "]";
                  return out;
                }
              }
              return "null";
            },
            &first_section);
  if (has_stats_) {
    AppendMap(&out, "stats", stats_,
              [](int64_t v) {
                return StringPrintf("%lld", static_cast<long long>(v));
              },
              &first_section);
    AppendMap(&out, "stat_timings", stat_timings_,
              [](double v) { return JsonDouble(v); }, &first_section);
  }
  if (has_counters_) {
    AppendMap(&out, "counters", counters_,
              [](int64_t v) {
                return StringPrintf("%lld", static_cast<long long>(v));
              },
              &first_section);
    AppendMap(&out, "gauges", gauges_,
              [](double v) { return JsonDouble(v); }, &first_section);
  }
  if (has_histograms_) {
    AppendMap(&out, "histograms", histograms_,
              [](const HistogramSnapshot& h) {
                return StringPrintf(
                    "{\"count\": %lld, \"p50_seconds\": %s, "
                    "\"p95_seconds\": %s, \"p99_seconds\": %s, "
                    "\"max_seconds\": %s, \"mean_seconds\": %s}",
                    static_cast<long long>(h.count),
                    JsonDouble(h.PercentileSeconds(50)).c_str(),
                    JsonDouble(h.PercentileSeconds(95)).c_str(),
                    JsonDouble(h.PercentileSeconds(99)).c_str(),
                    JsonDouble(h.MaxSeconds()).c_str(),
                    JsonDouble(h.MeanSeconds()).c_str());
              },
              &first_section);
  }
  if (has_spans_) {
    AppendMap(&out, "spans", spans_,
              [](const SpanRollup& r) {
                return StringPrintf(
                    "{\"count\": %lld, \"total_seconds\": %s}",
                    static_cast<long long>(r.count),
                    JsonDouble(r.total_seconds).c_str());
              },
              &first_section);
  }
  out += "\n}\n";
  return out;
}

Status RunReport::WriteFile(const std::string& path) const {
  std::string json = ToJson();
  FILE* f = fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::IOError("cannot open report file '" + path + "'");
  }
  size_t written = fwrite(json.data(), 1, json.size(), f);
  if (fclose(f) != 0 || written != json.size()) {
    return Status::IOError("short write to report file '" + path + "'");
  }
  return Status::OK();
}

void AddAlgorithmStats(const AlgorithmStats& stats, RunReport* report) {
  report->stats_["nodes_checked"] = stats.nodes_checked;
  report->stats_["nodes_marked"] = stats.nodes_marked;
  report->stats_["table_scans"] = stats.table_scans;
  report->stats_["rollups"] = stats.rollups;
  report->stats_["freq_groups_built"] = stats.freq_groups_built;
  report->stats_["candidate_nodes"] = stats.candidate_nodes;
  report->stats_["governor_checks"] = stats.governor_checks;
  report->stats_["deadline_trips"] = stats.deadline_trips;
  report->stats_["memory_trips"] = stats.memory_trips;
  report->stats_["cancel_trips"] = stats.cancel_trips;
  report->stats_["parallel_workers"] = stats.parallel_workers;
  report->stats_["tasks_scheduled"] = stats.tasks_scheduled;
  report->stats_["checkpoint_writes"] = stats.checkpoint_writes;
  report->stats_["checkpoint_bytes"] = stats.checkpoint_bytes;
  report->stats_["checkpoint_write_failures"] = stats.checkpoint_write_failures;
  report->stats_["restored_iterations"] = stats.restored_iterations;
  report->stats_["restored_subsets"] = stats.restored_subsets;
  report->stats_["batched_scan_nodes"] = stats.batched_scan_nodes;
  report->stat_timings_["batch_scan_seconds"] = stats.batch_scan_seconds;
  report->stat_timings_["cube_build_seconds"] = stats.cube_build_seconds;
  report->stat_timings_["total_seconds"] = stats.total_seconds;
  report->stat_timings_["critical_path_seconds"] =
      stats.critical_path_seconds;
  report->stat_timings_["scheduler_idle_seconds"] =
      stats.scheduler_idle_seconds;
  report->has_stats_ = true;
}

}  // namespace obs
}  // namespace incognito
