#include "obs/counters.h"

#include <cmath>

namespace incognito {
namespace obs {

CounterRegistry& CounterRegistry::Global() {
  static CounterRegistry* registry = new CounterRegistry();
  return *registry;
}

Counter* CounterRegistry::GetCounter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    std::string key(name);
    it = counters_.emplace(key, std::unique_ptr<Counter>(new Counter(key)))
             .first;
  }
  return it->second.get();
}

Gauge* CounterRegistry::GetGauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    std::string key(name);
    it = gauges_.emplace(key, std::unique_ptr<Gauge>(new Gauge(key))).first;
  }
  return it->second.get();
}

Histogram* CounterRegistry::GetHistogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    std::string key(name);
    it = histograms_
             .emplace(key, std::unique_ptr<Histogram>(new Histogram(key)))
             .first;
  }
  return it->second.get();
}

std::map<std::string, int64_t> CounterRegistry::CounterSnapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::map<std::string, int64_t> out;
  for (const auto& [name, counter] : counters_) {
    out[name] = counter->value();
  }
  return out;
}

std::map<std::string, double> CounterRegistry::GaugeSnapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::map<std::string, double> out;
  for (const auto& [name, gauge] : gauges_) {
    out[name] = gauge->value();
  }
  return out;
}

std::map<std::string, HistogramSnapshot> CounterRegistry::HistogramSnapshots()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  std::map<std::string, HistogramSnapshot> out;
  for (const auto& [name, hist] : histograms_) {
    out[name] = hist->Snapshot();
  }
  return out;
}

void CounterRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, counter] : counters_) {
    (void)name;
    counter->value_.store(0, std::memory_order_relaxed);
  }
  for (auto& [name, gauge] : gauges_) {
    (void)name;
    gauge->Set(0);
  }
  for (auto& [name, hist] : histograms_) {
    (void)name;
    hist->count_.store(0, std::memory_order_relaxed);
    hist->sum_ns_.store(0, std::memory_order_relaxed);
    hist->max_ns_.store(0, std::memory_order_relaxed);
    for (auto& bucket : hist->buckets_) {
      bucket.store(0, std::memory_order_relaxed);
    }
  }
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot snap;
  snap.count = count_.load(std::memory_order_relaxed);
  snap.sum_ns = sum_ns_.load(std::memory_order_relaxed);
  snap.max_ns = max_ns_.load(std::memory_order_relaxed);
  for (int b = 0; b < HistogramSnapshot::kNumBuckets; ++b) {
    snap.buckets[b] = buckets_[b].load(std::memory_order_relaxed);
  }
  return snap;
}

double HistogramSnapshot::PercentileSeconds(double p) const {
  if (count <= 0) return 0.0;
  if (p < 0) p = 0;
  if (p > 100) p = 100;
  // The 1-based rank of the percentile observation, rounded up so p=100
  // lands on the last observation.
  int64_t rank =
      static_cast<int64_t>(std::ceil(p / 100.0 * static_cast<double>(count)));
  if (rank < 1) rank = 1;
  if (rank > count) rank = count;
  int64_t seen = 0;
  for (int b = 0; b < kNumBuckets; ++b) {
    if (buckets[b] == 0) continue;
    if (seen + buckets[b] >= rank) {
      // Interpolate linearly inside [2^(b-1), 2^b) — exact to within one
      // log bucket either way.
      double lo = b == 0 ? 0.0 : static_cast<double>(int64_t{1} << (b - 1));
      double hi = static_cast<double>(
          b >= 63 ? max_ns : (int64_t{1} << b));
      double frac = static_cast<double>(rank - seen) /
                    static_cast<double>(buckets[b]);
      double ns = lo + (hi - lo) * frac;
      if (ns > static_cast<double>(max_ns)) ns = static_cast<double>(max_ns);
      return ns * 1e-9;
    }
    seen += buckets[b];
  }
  return MaxSeconds();
}

HistogramSnapshot HistogramSnapshot::DeltaSince(
    const HistogramSnapshot& before) const {
  HistogramSnapshot delta;
  delta.count = count - before.count;
  delta.sum_ns = sum_ns - before.sum_ns;
  delta.max_ns = max_ns;  // cumulative max: an upper bound for the interval
  for (int b = 0; b < kNumBuckets; ++b) {
    delta.buckets[b] = buckets[b] - before.buckets[b];
  }
  return delta;
}

MetricsSnapshot MetricsSnapshot::Take(const CounterRegistry& registry) {
  MetricsSnapshot snapshot;
  snapshot.counters = registry.CounterSnapshot();
  snapshot.gauges = registry.GaugeSnapshot();
  snapshot.histograms = registry.HistogramSnapshots();
  return snapshot;
}

MetricsSnapshot MetricsSnapshot::DeltaSince(
    const MetricsSnapshot& before) const {
  MetricsSnapshot delta;
  for (const auto& [name, value] : counters) {
    auto it = before.counters.find(name);
    int64_t d = value - (it == before.counters.end() ? 0 : it->second);
    if (d != 0) delta.counters[name] = d;
  }
  for (const auto& [name, value] : gauges) {
    auto it = before.gauges.find(name);
    double d = value - (it == before.gauges.end() ? 0 : it->second);
    if (std::fabs(d) >= 1e-9) delta.gauges[name] = d;
  }
  for (const auto& [name, value] : histograms) {
    auto it = before.histograms.find(name);
    HistogramSnapshot d = it == before.histograms.end()
                              ? value
                              : value.DeltaSince(it->second);
    if (d.count != 0) delta.histograms[name] = d;
  }
  return delta;
}

}  // namespace obs
}  // namespace incognito
