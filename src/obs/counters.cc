#include "obs/counters.h"

#include <cmath>

namespace incognito {
namespace obs {

CounterRegistry& CounterRegistry::Global() {
  static CounterRegistry* registry = new CounterRegistry();
  return *registry;
}

Counter* CounterRegistry::GetCounter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    std::string key(name);
    it = counters_.emplace(key, std::unique_ptr<Counter>(new Counter(key)))
             .first;
  }
  return it->second.get();
}

Gauge* CounterRegistry::GetGauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    std::string key(name);
    it = gauges_.emplace(key, std::unique_ptr<Gauge>(new Gauge(key))).first;
  }
  return it->second.get();
}

std::map<std::string, int64_t> CounterRegistry::CounterSnapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::map<std::string, int64_t> out;
  for (const auto& [name, counter] : counters_) {
    out[name] = counter->value();
  }
  return out;
}

std::map<std::string, double> CounterRegistry::GaugeSnapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::map<std::string, double> out;
  for (const auto& [name, gauge] : gauges_) {
    out[name] = gauge->value();
  }
  return out;
}

void CounterRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, counter] : counters_) {
    (void)name;
    counter->value_.store(0, std::memory_order_relaxed);
  }
  for (auto& [name, gauge] : gauges_) {
    (void)name;
    gauge->Set(0);
  }
}

MetricsSnapshot MetricsSnapshot::Take(const CounterRegistry& registry) {
  MetricsSnapshot snapshot;
  snapshot.counters = registry.CounterSnapshot();
  snapshot.gauges = registry.GaugeSnapshot();
  return snapshot;
}

MetricsSnapshot MetricsSnapshot::DeltaSince(
    const MetricsSnapshot& before) const {
  MetricsSnapshot delta;
  for (const auto& [name, value] : counters) {
    auto it = before.counters.find(name);
    int64_t d = value - (it == before.counters.end() ? 0 : it->second);
    if (d != 0) delta.counters[name] = d;
  }
  for (const auto& [name, value] : gauges) {
    auto it = before.gauges.find(name);
    double d = value - (it == before.gauges.end() ? 0 : it->second);
    if (std::fabs(d) >= 1e-9) delta.gauges[name] = d;
  }
  return delta;
}

}  // namespace obs
}  // namespace incognito
