#include "obs/timeline.h"

#include <algorithm>
#include <map>

#include "common/strings.h"
#include "obs/obs.h"
#include "obs/trace.h"

namespace incognito {
namespace obs {
namespace {

int PopCount(uint32_t v) {
  int count = 0;
  for (; v != 0; v &= v - 1) ++count;
  return count;
}

double DurSeconds(const TaskEvent& e) {
  return e.end_ns > e.start_ns
             ? static_cast<double>(e.end_ns - e.start_ns) * 1e-9
             : 0.0;
}

}  // namespace

void TaskTimeline::Record(TaskEvent event) {
  INCOGNITO_HIST_NANOS(
      "task.run_seconds",
      static_cast<int64_t>(event.end_ns > event.start_ns
                               ? event.end_ns - event.start_ns
                               : 0));
  INCOGNITO_HIST_NANOS(
      "task.queue_wait_seconds",
      static_cast<int64_t>(event.enqueue_ns != 0 &&
                                   event.start_ns > event.enqueue_ns
                               ? event.start_ns - event.enqueue_ns
                               : 0));
  std::lock_guard<std::mutex> lock(mu_);
  if (event.id == 0) event.id = next_id_++;
  events_.push_back(std::move(event));
}

std::vector<TaskEvent> TaskTimeline::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_;
}

size_t TaskTimeline::num_tasks() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

TimelineStats TaskTimeline::Derive() const {
  std::vector<TaskEvent> events = Snapshot();
  TimelineStats stats;
  stats.tasks = static_cast<int64_t>(events.size());
  int workers = num_workers_ > 0 ? num_workers_ : 1;
  for (const TaskEvent& e : events) {
    workers = std::max(workers, e.worker + 1);
  }
  stats.worker_utilization.assign(static_cast<size_t>(workers), 0.0);
  if (events.empty()) return stats;

  uint64_t t0 = events[0].start_ns, t1 = events[0].end_ns;
  std::vector<double> busy(static_cast<size_t>(workers), 0.0);
  // Per-batch slowest chunk (barrier phases) and per-mask duration (the
  // pipelined subset DAG) for the critical-path estimate.
  std::map<int64_t, double> batch_max;
  std::map<uint32_t, double> dag_dur;
  for (const TaskEvent& e : events) {
    uint64_t begin = e.enqueue_ns != 0 && e.enqueue_ns < e.start_ns
                         ? e.enqueue_ns
                         : e.start_ns;
    t0 = std::min(t0, begin);
    t1 = std::max(t1, e.end_ns);
    double dur = DurSeconds(e);
    busy[static_cast<size_t>(e.worker)] += dur;
    if (e.batch >= 0) {
      double& slot = batch_max[e.batch];
      slot = std::max(slot, dur);
    } else {
      double& slot = dag_dur[e.mask];
      slot = std::max(slot, dur);
    }
  }
  stats.makespan_seconds =
      t1 > t0 ? static_cast<double>(t1 - t0) * 1e-9 : 0.0;
  double total_busy = 0;
  for (int w = 0; w < workers; ++w) {
    total_busy += busy[static_cast<size_t>(w)];
    stats.worker_utilization[static_cast<size_t>(w)] =
        stats.makespan_seconds > 0
            ? busy[static_cast<size_t>(w)] / stats.makespan_seconds
            : 0.0;
  }
  stats.scheduler_idle_seconds =
      std::max(0.0, workers * stats.makespan_seconds - total_busy);

  // Barrier batches run in sequence: each contributes its slowest chunk.
  double critical = 0;
  for (const auto& [batch, dur] : batch_max) {
    (void)batch;
    critical += dur;
  }
  // Subset-DAG tasks: mask m depends on every sub-mask one bit smaller,
  // so the longest path is a max-plus sweep in popcount order.
  std::vector<std::pair<uint32_t, double>> masks(dag_dur.begin(),
                                                dag_dur.end());
  std::sort(masks.begin(), masks.end(),
            [](const auto& a, const auto& b) {
              int pa = PopCount(a.first), pb = PopCount(b.first);
              return pa != pb ? pa < pb : a.first < b.first;
            });
  std::map<uint32_t, double> longest;
  double dag_critical = 0;
  for (const auto& [mask, dur] : masks) {
    double best = 0;
    for (uint32_t bits = mask; bits != 0; bits &= bits - 1) {
      uint32_t sub = mask & ~(bits & ~(bits - 1));
      auto it = longest.find(sub);
      if (it != longest.end()) best = std::max(best, it->second);
    }
    longest[mask] = dur + best;
    dag_critical = std::max(dag_critical, longest[mask]);
  }
  stats.critical_path_seconds = critical + dag_critical;
  return stats;
}

void TaskTimeline::ExportTo(TraceRecorder& recorder) const {
  std::vector<TaskEvent> events = Snapshot();
  int workers = num_workers_ > 0 ? num_workers_ : 1;
  for (const TaskEvent& e : events) {
    workers = std::max(workers, e.worker + 1);
  }
  recorder.RecordMetadata("process_name", 0, 2, "\"name\":\"scheduler\"");
  for (int w = 0; w < workers; ++w) {
    recorder.RecordMetadata(
        "thread_name", static_cast<uint32_t>(w), 2,
        StringPrintf("\"name\":\"worker %d\"", w));
  }
  for (const TaskEvent& e : events) {
    double wait_us = e.enqueue_ns != 0 && e.start_ns > e.enqueue_ns
                         ? static_cast<double>(e.start_ns - e.enqueue_ns) /
                               1e3
                         : 0.0;
    std::string args = StringPrintf(
        "\"task\":%lld,\"queue_wait_us\":%.3f",
        static_cast<long long>(e.id), wait_us);
    if (e.batch < 0) {
      args += StringPrintf(",\"mask\":%u", e.mask);
    } else {
      args += StringPrintf(",\"batch\":%lld", static_cast<long long>(e.batch));
    }
    recorder.RecordComplete(e.name.empty() ? "task" : e.name, e.start_ns,
                            e.end_ns, static_cast<uint32_t>(e.worker), 2,
                            std::move(args));
  }
}

}  // namespace obs
}  // namespace incognito
