#ifndef INCOGNITO_OBS_OBS_H_
#define INCOGNITO_OBS_OBS_H_

// Umbrella header for the observability subsystem. Library hot paths use
// only the macros below, which expand to nothing when the build defines
// INCOGNITO_OBS_DISABLED (CMake option of the same name) — so the fully
// stripped library carries zero instrumentation cost. With the default
// (enabled) build the costs are:
//
//   INCOGNITO_SPAN         one relaxed atomic load when tracing is off;
//                          two clock reads + one mutex push when on
//   INCOGNITO_COUNT[_ADD]  one relaxed atomic add (handle cached per site)
//   INCOGNITO_PHASE_TIMER  two clock reads + one atomic CAS add
//   INCOGNITO_HIST_TIMER   two clock reads + three relaxed adds + CAS max
//   INCOGNITO_HIST_NANOS   three relaxed adds + one CAS max
//
// Tracing is off until TraceRecorder::Global().Enable() (the CLI's
// --trace flag, or a test). Counters and phase gauges are always
// collected; they are cheap and power --stats/--report/--json output.

#ifndef INCOGNITO_OBS_DISABLED

#include "obs/counters.h"
#include "obs/trace.h"

#define INCOGNITO_OBS_CAT_(a, b) a##b
#define INCOGNITO_OBS_CAT(a, b) INCOGNITO_OBS_CAT_(a, b)

/// RAII trace span covering the rest of the enclosing scope.
#define INCOGNITO_SPAN(name)             \
  ::incognito::obs::ScopedSpan INCOGNITO_OBS_CAT(_obs_span_, __LINE__) { \
    name                                 \
  }

/// Adds `delta` to the named global counter (handle cached per site).
#define INCOGNITO_COUNT_ADD(name, delta)                              \
  do {                                                                \
    static ::incognito::obs::Counter* _obs_counter =                  \
        ::incognito::obs::CounterRegistry::Global().GetCounter(name); \
    _obs_counter->Add(delta);                                         \
  } while (0)

#define INCOGNITO_COUNT(name) INCOGNITO_COUNT_ADD(name, 1)

/// Accumulates the enclosing scope's elapsed seconds into the named gauge.
#define INCOGNITO_PHASE_TIMER(name)                                          \
  static ::incognito::obs::Gauge* INCOGNITO_OBS_CAT(_obs_gauge_, __LINE__) = \
      ::incognito::obs::CounterRegistry::Global().GetGauge(name);            \
  ::incognito::obs::ScopedPhaseTimer INCOGNITO_OBS_CAT(_obs_phase_,          \
                                                       __LINE__) {           \
    INCOGNITO_OBS_CAT(_obs_gauge_, __LINE__)                                 \
  }

/// Records the enclosing scope's elapsed time into the named latency
/// histogram (handle cached per site).
#define INCOGNITO_HIST_TIMER(name)                                           \
  static ::incognito::obs::Histogram* INCOGNITO_OBS_CAT(_obs_hist_,          \
                                                        __LINE__) =          \
      ::incognito::obs::CounterRegistry::Global().GetHistogram(name);        \
  ::incognito::obs::ScopedHistogramTimer INCOGNITO_OBS_CAT(_obs_hist_timer_, \
                                                           __LINE__) {       \
    INCOGNITO_OBS_CAT(_obs_hist_, __LINE__)                                  \
  }

/// Records a pre-measured duration (nanoseconds) into the named histogram.
#define INCOGNITO_HIST_NANOS(name, ns)                                    \
  do {                                                                    \
    static ::incognito::obs::Histogram* _obs_hist =                       \
        ::incognito::obs::CounterRegistry::Global().GetHistogram(name);   \
    _obs_hist->RecordNanos(ns);                                           \
  } while (0)

#else  // INCOGNITO_OBS_DISABLED

#define INCOGNITO_SPAN(name) static_cast<void>(0)
#define INCOGNITO_COUNT_ADD(name, delta) static_cast<void>(0)
#define INCOGNITO_COUNT(name) static_cast<void>(0)
#define INCOGNITO_PHASE_TIMER(name) static_cast<void>(0)
#define INCOGNITO_HIST_TIMER(name) static_cast<void>(0)
#define INCOGNITO_HIST_NANOS(name, ns) static_cast<void>(0)

#endif  // INCOGNITO_OBS_DISABLED

#endif  // INCOGNITO_OBS_OBS_H_
