#include "obs/resource_sampler.h"

#include <chrono>
#include <cstdio>
#include <cstring>

#ifdef __linux__
#include <unistd.h>
#endif

#include "common/strings.h"
#include "obs/trace.h"

namespace incognito {
namespace obs {

ResourceSample ResourceSampler::ReadOnce() {
  ResourceSample sample;
  sample.ts_ns = TraceRecorder::NowNs();
#ifdef __linux__
  // /proc/self/statm: "size resident shared ..." in pages.
  if (FILE* f = fopen("/proc/self/statm", "r")) {
    long long size = 0, resident = 0;
    if (fscanf(f, "%lld %lld", &size, &resident) == 2) {
      sample.rss_bytes = resident * sysconf(_SC_PAGESIZE);
    }
    fclose(f);
  }
  // /proc/self/stat: utime and stime are fields 14 and 15, counted after
  // the ")" that closes the comm field (comm itself may contain spaces).
  if (FILE* f = fopen("/proc/self/stat", "r")) {
    char buf[1024];
    size_t n = fread(buf, 1, sizeof(buf) - 1, f);
    fclose(f);
    buf[n] = '\0';
    if (const char* close_paren = strrchr(buf, ')')) {
      const char* p = close_paren + 1;
      // Skip fields 3..13 (state through majflt); utime is the 12th
      // whitespace-separated token after the comm field.
      long long utime = 0, stime = 0;
      int field = 2;
      while (*p != '\0' && field < 13) {
        while (*p == ' ') ++p;
        while (*p != '\0' && *p != ' ') ++p;
        ++field;
      }
      if (sscanf(p, "%lld %lld", &utime, &stime) == 2) {
        long ticks = sysconf(_SC_CLK_TCK);
        if (ticks > 0) {
          sample.cpu_seconds =
              static_cast<double>(utime + stime) / static_cast<double>(ticks);
        }
      }
    }
  }
#endif  // __linux__
  return sample;
}

void ResourceSampler::SampleLocked() {
  ResourceSample sample = ReadOnce();
  if (sample.rss_bytes > peak_rss_) peak_rss_ = sample.rss_bytes;
  if (sample.cpu_seconds > cpu_seconds_) cpu_seconds_ = sample.cpu_seconds;
  samples_.push_back(sample);
}

void ResourceSampler::Start(int interval_ms) {
#ifdef INCOGNITO_OBS_DISABLED
  (void)interval_ms;
  return;
#else
  if (interval_ms < 1) interval_ms = 1;
  std::unique_lock<std::mutex> lock(mu_);
  if (running_) return;
  running_ = true;
  stop_ = false;
  samples_.clear();
  peak_rss_ = 0;
  cpu_seconds_ = 0;
  SampleLocked();
  thread_ = std::thread([this, interval_ms] {
    std::unique_lock<std::mutex> thread_lock(mu_);
    while (!stop_) {
      cv_.wait_for(thread_lock, std::chrono::milliseconds(interval_ms),
                   [this] { return stop_; });
      if (stop_) break;
      SampleLocked();
    }
  });
#endif  // INCOGNITO_OBS_DISABLED
}

void ResourceSampler::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!running_) return;
    stop_ = true;
    SampleLocked();
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  std::lock_guard<std::mutex> lock(mu_);
  running_ = false;
}

bool ResourceSampler::running() const {
  std::lock_guard<std::mutex> lock(mu_);
  return running_;
}

std::vector<ResourceSample> ResourceSampler::Samples() const {
  std::lock_guard<std::mutex> lock(mu_);
  return samples_;
}

int64_t ResourceSampler::peak_rss_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return peak_rss_;
}

double ResourceSampler::cpu_seconds() const {
  std::lock_guard<std::mutex> lock(mu_);
  return cpu_seconds_;
}

void ResourceSampler::ExportCounterEvents(TraceRecorder& recorder) const {
  std::vector<ResourceSample> samples = Samples();
  const ResourceSample* prev = nullptr;
  for (const ResourceSample& s : samples) {
    recorder.RecordCounter(
        "rss_bytes", s.ts_ns, 1,
        StringPrintf("\"bytes\":%lld", static_cast<long long>(s.rss_bytes)));
    // CPU as a rate between consecutive samples (percent of one core).
    if (prev != nullptr && s.ts_ns > prev->ts_ns) {
      double wall = static_cast<double>(s.ts_ns - prev->ts_ns) * 1e-9;
      double pct = (s.cpu_seconds - prev->cpu_seconds) / wall * 100.0;
      if (pct < 0) pct = 0;
      recorder.RecordCounter("cpu_percent", s.ts_ns, 1,
                             StringPrintf("\"percent\":%.1f", pct));
    }
    prev = &s;
  }
}

}  // namespace obs
}  // namespace incognito
