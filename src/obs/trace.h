#ifndef INCOGNITO_OBS_TRACE_H_
#define INCOGNITO_OBS_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"

namespace incognito {
namespace obs {

/// One recorded event. Timestamps are nanoseconds on the recorder's
/// monotonic clock, relative to the Enable() epoch. `phase` follows the
/// Chrome trace_event phase codes this recorder emits: 'X' (complete
/// span), 'C' (counter sample), 'M' (metadata, e.g. thread_name).
struct TraceEvent {
  std::string name;
  uint64_t start_ns = 0;
  uint64_t dur_ns = 0;
  uint32_t tid = 0;    ///< small dense id, assigned per recording thread
  uint32_t pid = 1;    ///< trace-viewer process lane (1 = spans,
                       ///< 2 = scheduler timeline)
  uint32_t depth = 0;  ///< span nesting depth on its thread (0 = outermost)
  char phase = 'X';
  std::string args_json;  ///< extra `"key":value` pairs, already JSON
};

/// Aggregate of every span with one name — the per-phase rollup a
/// RunReport embeds.
struct SpanRollup {
  int64_t count = 0;
  double total_seconds = 0;
};

/// Records RAII spans, scheduler timeline events, and resource counter
/// samples, and exports them as a Chrome `trace_event` JSON object
/// (`{"traceEvents":[...]}`) loadable in chrome://tracing and Perfetto.
/// Disabled by default: a disabled recorder costs one relaxed atomic load
/// per span, so instrumentation can stay in release builds. Thread-safe;
/// events carry a per-thread id so concurrent algorithm phases render on
/// separate tracks.
///
/// The event buffer is bounded (SetCapacity; default 262144 events) so a
/// long pipelined run cannot grow it without limit — events past the cap
/// are counted in dropped_events() and reported in the trace footer.
class TraceRecorder {
 public:
  static constexpr size_t kDefaultCapacity = 262144;

  /// The recorder the INCOGNITO_SPAN macro records into.
  static TraceRecorder& Global();

  /// Starts recording; resets the time epoch and drops prior events.
  void Enable();
  void Disable();
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Caps the event buffer; events recorded past the cap are dropped and
  /// counted. Call before Enable(); 0 restores the default.
  void SetCapacity(size_t max_events);
  uint64_t dropped_events() const;

  /// Nanoseconds on the monotonic clock (absolute, epoch-independent).
  static uint64_t NowNs() {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
  }

  /// Records one completed span given absolute NowNs() endpoints.
  void Record(std::string name, uint64_t start_ns, uint64_t end_ns,
              uint32_t depth);

  /// Records a completed span with explicit lane ids (the TaskTimeline
  /// export uses tid = worker id, pid = 2 so the scheduler renders as its
  /// own process with per-worker swimlanes). Endpoints are absolute
  /// NowNs() values; `args_json` is extra `"key":value` JSON for the
  /// event's args object.
  void RecordComplete(std::string name, uint64_t start_ns, uint64_t end_ns,
                      uint32_t tid, uint32_t pid, std::string args_json);

  /// Records a counter sample (ph='C') at an absolute timestamp; Chrome
  /// renders these as stacked area charts. `args_json` holds the series,
  /// e.g. "\"bytes\":123".
  void RecordCounter(std::string name, uint64_t ts_ns, uint32_t pid,
                     std::string args_json);

  /// Records a metadata event (ph='M'), e.g. name="thread_name" with
  /// args "\"name\":\"worker 0\"" to label a swimlane.
  void RecordMetadata(std::string name, uint32_t tid, uint32_t pid,
                      std::string args_json);

  std::vector<TraceEvent> Snapshot() const;
  size_t num_events() const;
  void Clear();

  /// Per-name aggregates over the recorded 'X' (span) events.
  std::map<std::string, SpanRollup> RollupByName() const;

  /// The Chrome trace_event JSON object: {"traceEvents":[...],
  /// "displayTimeUnit":"ms", "droppedEvents":N}.
  std::string ToJson() const;
  Status WriteJson(const std::string& path) const;

 private:
  static uint32_t CurrentThreadId();

  /// Appends under mu_, enforcing the capacity bound.
  void Push(TraceEvent event);

  std::atomic<bool> enabled_{false};
  mutable std::mutex mu_;
  uint64_t epoch_ns_ = 0;
  size_t capacity_ = kDefaultCapacity;
  uint64_t dropped_ = 0;
  std::vector<TraceEvent> events_;
};

/// RAII span: records the scope's duration into the global TraceRecorder
/// when it is enabled, and tracks per-thread nesting depth. Use via
/// INCOGNITO_SPAN so the whole thing compiles out under
/// INCOGNITO_OBS_DISABLED.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name)
      : active_(TraceRecorder::Global().enabled()) {
    if (active_) {
      name_ = name;
      depth_ = depth_counter()++;
      start_ns_ = TraceRecorder::NowNs();
    }
  }
  ~ScopedSpan() {
    if (active_) {
      uint64_t end_ns = TraceRecorder::NowNs();
      --depth_counter();
      TraceRecorder::Global().Record(name_, start_ns_, end_ns, depth_);
    }
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  static uint32_t& depth_counter() {
    thread_local uint32_t depth = 0;
    return depth;
  }

  bool active_;
  const char* name_ = nullptr;
  uint64_t start_ns_ = 0;
  uint32_t depth_ = 0;
};

}  // namespace obs
}  // namespace incognito

#endif  // INCOGNITO_OBS_TRACE_H_
