#ifndef INCOGNITO_OBS_RESOURCE_SAMPLER_H_
#define INCOGNITO_OBS_RESOURCE_SAMPLER_H_

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

namespace incognito {
namespace obs {

class TraceRecorder;

/// One point-in-time reading of the process's resource usage.
struct ResourceSample {
  uint64_t ts_ns = 0;       ///< absolute TraceRecorder::NowNs timestamp
  int64_t rss_bytes = 0;    ///< resident set size (procfs statm)
  double cpu_seconds = 0;   ///< cumulative user+system CPU (procfs stat)
};

/// Samples the process's RSS and CPU ticks from procfs on a background
/// thread at a fixed interval. Shutdown is governed: Stop() (also run by
/// the destructor) signals the thread and joins it, so the sampler never
/// outlives its owner. Under INCOGNITO_OBS_DISABLED Start() is a no-op —
/// the thread never starts and every accessor returns zeros. On platforms
/// without procfs the readings are zero but the machinery still works.
class ResourceSampler {
 public:
  ResourceSampler() = default;
  ~ResourceSampler() { Stop(); }
  ResourceSampler(const ResourceSampler&) = delete;
  ResourceSampler& operator=(const ResourceSampler&) = delete;

  /// Starts sampling every `interval_ms` milliseconds (clamped to >= 1).
  /// No-op if already running or compiled with INCOGNITO_OBS_DISABLED.
  /// Takes one sample immediately so even short runs get a reading.
  void Start(int interval_ms);

  /// Takes a final sample, stops the thread, and joins it. Idempotent.
  void Stop();

  bool running() const;

  std::vector<ResourceSample> Samples() const;
  int64_t peak_rss_bytes() const;
  /// Cumulative process CPU seconds at the last sample.
  double cpu_seconds() const;

  /// Emits every sample into `recorder` as Chrome counter events
  /// ("rss_bytes", "cpu_percent") so resource usage renders alongside the
  /// task swimlanes.
  void ExportCounterEvents(TraceRecorder& recorder) const;

  /// One synchronous procfs reading (exposed for tests and the report's
  /// end-of-run figures).
  static ResourceSample ReadOnce();

 private:
  void SampleLocked();

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::thread thread_;
  bool running_ = false;
  bool stop_ = false;
  std::vector<ResourceSample> samples_;
  int64_t peak_rss_ = 0;
  double cpu_seconds_ = 0;
};

}  // namespace obs
}  // namespace incognito

#endif  // INCOGNITO_OBS_RESOURCE_SAMPLER_H_
