#ifndef INCOGNITO_OBS_JSON_UTIL_H_
#define INCOGNITO_OBS_JSON_UTIL_H_

#include <string>
#include <string_view>

namespace incognito {
namespace obs {

/// Returns `s` escaped for inclusion inside a JSON string literal (quotes,
/// backslashes, control characters; no surrounding quotes).
std::string JsonEscape(std::string_view s);

/// Returns `s` as a quoted JSON string literal.
std::string JsonString(std::string_view s);

/// Formats a double as a JSON number. Non-finite values (which JSON cannot
/// represent) are clamped to 0.
std::string JsonDouble(double v);

/// Minimal recursive-descent JSON syntax check covering objects, arrays,
/// strings, numbers, booleans, and null. Used by tests and tools to verify
/// that emitted traces and reports are loadable; on failure, `error` (if
/// non-null) receives a byte offset and description.
bool IsValidJson(std::string_view text, std::string* error = nullptr);

}  // namespace obs
}  // namespace incognito

#endif  // INCOGNITO_OBS_JSON_UTIL_H_
