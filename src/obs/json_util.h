#ifndef INCOGNITO_OBS_JSON_UTIL_H_
#define INCOGNITO_OBS_JSON_UTIL_H_

#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace incognito {
namespace obs {

/// Returns `s` escaped for inclusion inside a JSON string literal (quotes,
/// backslashes, control characters; no surrounding quotes).
std::string JsonEscape(std::string_view s);

/// Returns `s` as a quoted JSON string literal.
std::string JsonString(std::string_view s);

/// Formats a double as a JSON number. Non-finite values (which JSON cannot
/// represent) are clamped to 0.
std::string JsonDouble(double v);

/// Minimal recursive-descent JSON syntax check covering objects, arrays,
/// strings, numbers, booleans, and null. Used by tests and tools to verify
/// that emitted traces and reports are loadable; on failure, `error` (if
/// non-null) receives a byte offset and description.
bool IsValidJson(std::string_view text, std::string* error = nullptr);

/// A parsed JSON document node. Small and copyable; object members keep
/// sorted (map) order, which is what our own emitters produce anyway.
struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Type type = Type::kNull;
  bool b = false;
  double num = 0;
  std::string str;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  bool is_null() const { return type == Type::kNull; }
  bool is_bool() const { return type == Type::kBool; }
  bool is_number() const { return type == Type::kNumber; }
  bool is_string() const { return type == Type::kString; }
  bool is_array() const { return type == Type::kArray; }
  bool is_object() const { return type == Type::kObject; }

  /// Object member lookup; nullptr when this is not an object or the key
  /// is absent.
  const JsonValue* Find(const std::string& key) const {
    if (type != Type::kObject) return nullptr;
    auto it = object.find(key);
    return it == object.end() ? nullptr : &it->second;
  }

  double NumberOr(double fallback) const {
    return type == Type::kNumber ? num : fallback;
  }
  std::string StringOr(const std::string& fallback) const {
    return type == Type::kString ? str : fallback;
  }
};

/// Parses `text` into a JsonValue DOM (used by bench_diff and the trace
/// parse-back tests). Same grammar as IsValidJson; on failure returns
/// false and fills `error` (if non-null) with a byte offset and
/// description.
bool ParseJson(std::string_view text, JsonValue* out,
               std::string* error = nullptr);

}  // namespace obs
}  // namespace incognito

#endif  // INCOGNITO_OBS_JSON_UTIL_H_
