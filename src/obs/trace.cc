#include "obs/trace.h"

#include <cstdio>

#include "common/strings.h"
#include "obs/json_util.h"

namespace incognito {
namespace obs {

TraceRecorder& TraceRecorder::Global() {
  static TraceRecorder* recorder = new TraceRecorder();
  return *recorder;
}

uint32_t TraceRecorder::CurrentThreadId() {
  static std::atomic<uint32_t> next_id{1};
  thread_local uint32_t id = next_id.fetch_add(1, std::memory_order_relaxed);
  return id;
}

void TraceRecorder::Enable() {
  std::lock_guard<std::mutex> lock(mu_);
  events_.clear();
  dropped_ = 0;
  epoch_ns_ = NowNs();
  enabled_.store(true, std::memory_order_relaxed);
}

void TraceRecorder::Disable() {
  enabled_.store(false, std::memory_order_relaxed);
}

void TraceRecorder::SetCapacity(size_t max_events) {
  std::lock_guard<std::mutex> lock(mu_);
  capacity_ = max_events == 0 ? kDefaultCapacity : max_events;
}

uint64_t TraceRecorder::dropped_events() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

void TraceRecorder::Push(TraceEvent event) {
  std::lock_guard<std::mutex> lock(mu_);
  if (events_.size() >= capacity_) {
    ++dropped_;
    return;
  }
  events_.push_back(std::move(event));
}

void TraceRecorder::Record(std::string name, uint64_t start_ns,
                           uint64_t end_ns, uint32_t depth) {
  TraceEvent event;
  event.name = std::move(name);
  event.tid = CurrentThreadId();
  event.depth = depth;
  std::lock_guard<std::mutex> lock(mu_);
  if (events_.size() >= capacity_) {
    ++dropped_;
    return;
  }
  // A span that started before Enable() reset the epoch is clamped to it.
  event.start_ns = start_ns > epoch_ns_ ? start_ns - epoch_ns_ : 0;
  uint64_t rel_end = end_ns > epoch_ns_ ? end_ns - epoch_ns_ : 0;
  event.dur_ns = rel_end > event.start_ns ? rel_end - event.start_ns : 0;
  events_.push_back(std::move(event));
}

void TraceRecorder::RecordComplete(std::string name, uint64_t start_ns,
                                   uint64_t end_ns, uint32_t tid,
                                   uint32_t pid, std::string args_json) {
  TraceEvent event;
  event.name = std::move(name);
  event.tid = tid;
  event.pid = pid;
  event.phase = 'X';
  event.args_json = std::move(args_json);
  std::lock_guard<std::mutex> lock(mu_);
  if (events_.size() >= capacity_) {
    ++dropped_;
    return;
  }
  event.start_ns = start_ns > epoch_ns_ ? start_ns - epoch_ns_ : 0;
  uint64_t rel_end = end_ns > epoch_ns_ ? end_ns - epoch_ns_ : 0;
  event.dur_ns = rel_end > event.start_ns ? rel_end - event.start_ns : 0;
  events_.push_back(std::move(event));
}

void TraceRecorder::RecordCounter(std::string name, uint64_t ts_ns,
                                  uint32_t pid, std::string args_json) {
  TraceEvent event;
  event.name = std::move(name);
  event.pid = pid;
  event.phase = 'C';
  event.args_json = std::move(args_json);
  std::lock_guard<std::mutex> lock(mu_);
  if (events_.size() >= capacity_) {
    ++dropped_;
    return;
  }
  event.start_ns = ts_ns > epoch_ns_ ? ts_ns - epoch_ns_ : 0;
  events_.push_back(std::move(event));
}

void TraceRecorder::RecordMetadata(std::string name, uint32_t tid,
                                   uint32_t pid, std::string args_json) {
  TraceEvent event;
  event.name = std::move(name);
  event.tid = tid;
  event.pid = pid;
  event.phase = 'M';
  event.args_json = std::move(args_json);
  Push(std::move(event));
}

std::vector<TraceEvent> TraceRecorder::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_;
}

size_t TraceRecorder::num_events() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

void TraceRecorder::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  events_.clear();
}

std::map<std::string, SpanRollup> TraceRecorder::RollupByName() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::map<std::string, SpanRollup> out;
  for (const TraceEvent& event : events_) {
    if (event.phase != 'X') continue;
    SpanRollup& rollup = out[event.name];
    ++rollup.count;
    rollup.total_seconds += static_cast<double>(event.dur_ns) * 1e-9;
  }
  return out;
}

std::string TraceRecorder::ToJson() const {
  std::vector<TraceEvent> events = Snapshot();
  uint64_t dropped = dropped_events();
  // The trace_event object format: viewers read "traceEvents" and ignore
  // the footer keys, which carry the recorder's own bookkeeping.
  std::string out = "{\n\"traceEvents\": [";
  for (size_t i = 0; i < events.size(); ++i) {
    const TraceEvent& e = events[i];
    if (i > 0) out += ",";
    switch (e.phase) {
      case 'C':
        // Counter sample; ts is microseconds.
        out += StringPrintf(
            "\n{\"name\":%s,\"cat\":\"incognito\",\"ph\":\"C\","
            "\"ts\":%.3f,\"pid\":%u,\"args\":{%s}}",
            JsonString(e.name).c_str(), static_cast<double>(e.start_ns) / 1e3,
            e.pid, e.args_json.c_str());
        break;
      case 'M':
        out += StringPrintf(
            "\n{\"name\":%s,\"ph\":\"M\",\"pid\":%u,\"tid\":%u,"
            "\"args\":{%s}}",
            JsonString(e.name).c_str(), e.pid, e.tid, e.args_json.c_str());
        break;
      default: {
        // Chrome trace_event "complete" events; ts/dur are microseconds.
        std::string args = StringPrintf("\"depth\":%u", e.depth);
        if (!e.args_json.empty()) {
          args += ",";
          args += e.args_json;
        }
        out += StringPrintf(
            "\n{\"name\":%s,\"cat\":\"incognito\",\"ph\":\"X\","
            "\"ts\":%.3f,\"dur\":%.3f,\"pid\":%u,\"tid\":%u,"
            "\"args\":{%s}}",
            JsonString(e.name).c_str(), static_cast<double>(e.start_ns) / 1e3,
            static_cast<double>(e.dur_ns) / 1e3, e.pid, e.tid, args.c_str());
        break;
      }
    }
  }
  out += StringPrintf(
      "\n],\n\"displayTimeUnit\": \"ms\",\n\"droppedEvents\": %llu\n}\n",
      static_cast<unsigned long long>(dropped));
  return out;
}

Status TraceRecorder::WriteJson(const std::string& path) const {
  std::string json = ToJson();
  FILE* f = fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::IOError("cannot open trace file '" + path + "'");
  }
  size_t written = fwrite(json.data(), 1, json.size(), f);
  if (fclose(f) != 0 || written != json.size()) {
    return Status::IOError("short write to trace file '" + path + "'");
  }
  return Status::OK();
}

}  // namespace obs
}  // namespace incognito
