#ifndef INCOGNITO_OBS_REPORT_H_
#define INCOGNITO_OBS_REPORT_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "obs/counters.h"
#include "obs/trace.h"

namespace incognito {

struct AlgorithmStats;

namespace obs {

/// Machine-readable run summary with a stable JSON schema
/// (docs/OBSERVABILITY.md documents it):
///
///   {
///     "schema_version": 5,
///     "tool": "...", "command": "...",
///     "fields":     { string | int | double | bool | [double...] ... },
///     "stats":      { AlgorithmStats fields ... },        // optional
///     "counters":   { name: int ... },                    // optional
///     "gauges":     { name: double ... },                 // optional
///     "histograms": { name: {count, p50_seconds, p95_seconds,
///                            p99_seconds, max_seconds,
///                            mean_seconds} ... },         // optional
///     "spans":      { name: {count, total_seconds} ... }  // optional
///   }
///
/// Keys are emitted in sorted order, so identical inputs serialize to
/// identical bytes (the golden test relies on this).
class RunReport {
 public:
  static constexpr int kSchemaVersion = 5;

  RunReport(std::string tool, std::string command);

  void SetString(const std::string& key, std::string value);
  void SetInt(const std::string& key, int64_t value);
  void SetDouble(const std::string& key, double value);
  void SetBool(const std::string& key, bool value);
  /// A JSON array of doubles (e.g. per-worker utilization fractions).
  void SetDoubleList(const std::string& key, std::vector<double> values);

  /// Copies the registry's current counter and gauge values into the
  /// report's "counters" / "gauges" sections.
  void AddCounters(const CounterRegistry& registry);
  void AddMetrics(const MetricsSnapshot& snapshot);

  /// Copies per-span-name aggregates into the "spans" section.
  void AddSpans(const TraceRecorder& recorder);

  std::string ToJson() const;
  Status WriteFile(const std::string& path) const;

 private:
  struct FieldValue {
    enum class Kind { kString, kInt, kDouble, kBool, kDoubleList } kind;
    std::string s;
    int64_t i = 0;
    double d = 0;
    bool b = false;
    std::vector<double> list;
  };

  std::string tool_;
  std::string command_;
  std::map<std::string, FieldValue> fields_;
  std::map<std::string, int64_t> stats_;
  std::map<std::string, double> stat_timings_;
  std::map<std::string, int64_t> counters_;
  std::map<std::string, double> gauges_;
  std::map<std::string, HistogramSnapshot> histograms_;
  std::map<std::string, SpanRollup> spans_;
  bool has_stats_ = false;
  bool has_counters_ = false;
  bool has_histograms_ = false;
  bool has_spans_ = false;

  friend void AddAlgorithmStats(const AlgorithmStats& stats,
                                RunReport* report);
};

/// Serializes an AlgorithmStats into the report's "stats" section, one key
/// per field (kept in sync with AlgorithmStats by the obs unit test).
void AddAlgorithmStats(const AlgorithmStats& stats, RunReport* report);

}  // namespace obs
}  // namespace incognito

#endif  // INCOGNITO_OBS_REPORT_H_
