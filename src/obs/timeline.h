#ifndef INCOGNITO_OBS_TIMELINE_H_
#define INCOGNITO_OBS_TIMELINE_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace incognito {
namespace obs {

class TraceRecorder;

/// One scheduled unit of work as seen by a TaskTimeline: a subset-DAG
/// task in the pipelined scheduler, or one worker's chunk of a barrier
/// WorkerPool::Run. Timestamps are absolute TraceRecorder::NowNs values.
struct TaskEvent {
  int64_t id = 0;           ///< dense per-timeline task id
  uint32_t mask = 0;        ///< subset mask for DAG tasks, 0 otherwise
  int worker = 0;           ///< worker that executed the task (0 = caller)
  int64_t batch = -1;       ///< pool Run() generation for barrier chunks;
                            ///< -1 for DAG tasks (deps come from `mask`)
  uint64_t enqueue_ns = 0;  ///< when the task became ready to run
  uint64_t start_ns = 0;
  uint64_t end_ns = 0;
  std::string name;
};

/// Scheduler health figures derived from one timeline (see Derive()).
struct TimelineStats {
  /// Per-worker busy fraction of the timeline's makespan, indexed by
  /// worker id.
  std::vector<double> worker_utilization;
  /// The longest dependency-respecting chain of task durations: barrier
  /// batches contribute their slowest chunk, the subset DAG its longest
  /// root-to-apex path. A lower bound on the run's serial time.
  double critical_path_seconds = 0;
  /// Worker-seconds not spent running tasks: workers * makespan - busy.
  double scheduler_idle_seconds = 0;
  double makespan_seconds = 0;
  int64_t tasks = 0;
};

/// Records per-task scheduling events (enqueue/start/end, worker, subset
/// mask) from the WorkerPool and the pipelined subset-DAG scheduler.
/// Thread-safe; Record also feeds the `task.run_seconds` and
/// `task.queue_wait_seconds` latency histograms. One timeline instance
/// covers one run — construct fresh per RunIncognito* call.
class TaskTimeline {
 public:
  explicit TaskTimeline(int num_workers) : num_workers_(num_workers) {}
  TaskTimeline(const TaskTimeline&) = delete;
  TaskTimeline& operator=(const TaskTimeline&) = delete;

  /// Appends one completed task. `event.id` is assigned here (dense,
  /// in completion order) when left at 0.
  void Record(TaskEvent event);

  std::vector<TaskEvent> Snapshot() const;
  size_t num_tasks() const;
  int num_workers() const { return num_workers_; }

  /// Derives utilization, critical path, and idle time from the recorded
  /// tasks. Call after the run is quiescent.
  TimelineStats Derive() const;

  /// Exports the timeline into `recorder` as Chrome trace "complete"
  /// events with tid = worker id under pid 2 ("scheduler"), plus
  /// thread_name/process_name metadata, so the DAG renders as per-worker
  /// swimlanes.
  void ExportTo(TraceRecorder& recorder) const;

 private:
  int num_workers_;
  mutable std::mutex mu_;
  int64_t next_id_ = 1;
  std::vector<TaskEvent> events_;
};

}  // namespace obs
}  // namespace incognito

#endif  // INCOGNITO_OBS_TIMELINE_H_
