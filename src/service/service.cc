#include "service/service.h"

#include <algorithm>
#include <utility>

#include "robust/fault_injector.h"

namespace incognito {
namespace {

/// Stride numerator: pass advances by kStrideScale / weight per dispatch,
/// so a weight-3 tenant is dispatched three times per weight-1 dispatch
/// under contention.
constexpr double kStrideScale = 1 << 20;

}  // namespace

const char* JobStateName(JobState state) {
  switch (state) {
    case JobState::kQueued:
      return "queued";
    case JobState::kRunning:
      return "running";
    case JobState::kDone:
      return "done";
  }
  return "queued";
}

ServiceCore::ServiceCore(const ServiceConfig& config) : config_(config) {
  if (config_.memory_limit_bytes > 0) {
    lease_pool_.SetMemoryLimitBytes(config_.memory_limit_bytes);
  }
  StartWorkers(config_.num_workers);
}

ServiceCore::~ServiceCore() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
    draining_ = true;
    // Queued jobs are cancelled in place — no worker will pick them up.
    for (auto& [name, tenant] : tenants_) {
      for (JobRecord* job : tenant.queue) {
        job->cancel_requested = true;
        job->result.status = Status::Cancelled("service shutting down");
        FinishLocked(job);
        ++stats_.cancelled;
      }
      tenant.queue.clear();
    }
    queued_ = 0;
    // Running jobs unwind at their next governor checkpoint.
    for (auto& [id, job] : jobs_) {
      if (job->state == JobState::kRunning) {
        job->cancel_requested = true;
        job->cancel.Cancel();
      }
    }
  }
  work_cv_.notify_all();
  done_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

Result<JobId> ServiceCore::Submit(JobSpec spec) {
  std::unique_lock<std::mutex> lock(mu_);
  ++stats_.submitted;
  if (draining_ || stopping_) {
    ++stats_.rejected_draining;
    return Status::FailedPrecondition(
        "service is draining; not accepting new jobs");
  }
  INCOGNITO_FAULT_POINT(
      "service.admit",
      Status::ResourceExhausted("injected fault at service.admit"));
  if (queued_ >= config_.queue_depth) {
    ++stats_.rejected_queue_full;
    return Status::ResourceExhausted(
        "admission queue full (backpressure: retry after a completion)");
  }
  auto [it, created] = tenants_.try_emplace(spec.tenant);
  TenantQueue& tenant = it->second;
  if (created) {
    auto w = config_.tenant_weights.find(spec.tenant);
    if (w != config_.tenant_weights.end() && w->second > 0) {
      tenant.weight = w->second;
    }
  }
  if (tenant.queue.size() >= config_.per_tenant_queue_depth) {
    ++stats_.rejected_tenant_quota;
    return Status::ResourceExhausted(
        "tenant '" + spec.tenant +
        "' queue quota full (backpressure: retry after a completion)");
  }
  int64_t lease = spec.exec.memory_budget_bytes > 0
                      ? spec.exec.memory_budget_bytes
                      : config_.default_job_lease_bytes;
  if (config_.memory_limit_bytes > 0 &&
      !lease_pool_.TryLeaseMemory(lease)) {
    ++stats_.rejected_memory;
    return Status::ResourceExhausted(
        "service memory lease pool exhausted (backpressure: retry after a "
        "completion)");
  }

  auto record = std::make_unique<JobRecord>();
  record->id = next_id_++;
  record->spec = std::move(spec);
  record->lease_bytes = config_.memory_limit_bytes > 0 ? lease : 0;
  JobRecord* job = record.get();
  jobs_.emplace(job->id, std::move(record));
  // A tenant re-entering the schedule starts at the current virtual time:
  // idling must not bank credit against the busy tenants.
  if (tenant.queue.empty()) {
    tenant.pass = std::max(tenant.pass, virtual_time_);
  }
  tenant.queue.push_back(job);
  ++queued_;
  ++stats_.admitted;
  work_cv_.notify_one();
  return job->id;
}

Result<JobSnapshot> ServiceCore::Poll(JobId id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = jobs_.find(id);
  if (it == jobs_.end()) {
    return Status::NotFound("unknown job id " + std::to_string(id));
  }
  const JobRecord& job = *it->second;
  JobSnapshot snapshot;
  snapshot.id = job.id;
  snapshot.tenant = job.spec.tenant;
  snapshot.model = job.spec.model;
  snapshot.state = job.state;
  snapshot.cancel_requested = job.cancel_requested;
  snapshot.partial_ok = job.spec.partial_ok;
  // Atomic gauges only: the worker mutates everything else in the record
  // outside the lock while the job runs.
  snapshot.memory_used_bytes = job.governor.memory().used();
  snapshot.memory_peak_bytes = job.governor.memory().peak();
  snapshot.finish_seq = job.finish_seq;
  return snapshot;
}

Result<JobResult> ServiceCore::Wait(JobId id) {
  std::unique_lock<std::mutex> lock(mu_);
  auto it = jobs_.find(id);
  if (it == jobs_.end()) {
    return Status::NotFound("unknown job id " + std::to_string(id));
  }
  JobRecord* job = it->second.get();
  done_cv_.wait(lock, [job] { return job->state == JobState::kDone; });
  return job->result;
}

Result<JobResult> ServiceCore::FetchResult(JobId id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = jobs_.find(id);
  if (it == jobs_.end()) {
    return Status::NotFound("unknown job id " + std::to_string(id));
  }
  const JobRecord& job = *it->second;
  if (job.state != JobState::kDone) {
    return Status::FailedPrecondition(
        "job " + std::to_string(id) + " is still " +
        JobStateName(job.state));
  }
  return job.result;
}

Status ServiceCore::Cancel(JobId id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = jobs_.find(id);
  if (it == jobs_.end()) {
    return Status::NotFound("unknown job id " + std::to_string(id));
  }
  JobRecord* job = it->second.get();
  if (job->state == JobState::kDone) return Status::OK();
  job->cancel_requested = true;
  if (job->state == JobState::kQueued) {
    TenantQueue& tenant = tenants_[job->spec.tenant];
    tenant.queue.erase(
        std::find(tenant.queue.begin(), tenant.queue.end(), job));
    --queued_;
    job->result.status = Status::Cancelled("cancelled while queued");
    FinishLocked(job);
    ++stats_.cancelled;
    done_cv_.notify_all();
  } else {
    job->cancel.Cancel();
  }
  return Status::OK();
}

void ServiceCore::Drain() {
  std::unique_lock<std::mutex> lock(mu_);
  draining_ = true;
  done_cv_.wait(lock, [this] { return queued_ == 0 && running_ == 0; });
}

void ServiceCore::StartWorkers(int n) {
  std::lock_guard<std::mutex> lock(mu_);
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ServiceStats ServiceCore::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

ServiceCore::JobRecord* ServiceCore::PickNextLocked() {
  TenantQueue* best = nullptr;
  for (auto& [name, tenant] : tenants_) {
    if (tenant.queue.empty()) continue;
    if (best == nullptr || tenant.pass < best->pass) best = &tenant;
  }
  JobRecord* job = best->queue.front();
  best->queue.pop_front();
  --queued_;
  virtual_time_ = best->pass;
  best->pass += kStrideScale / best->weight;
  return job;
}

void ServiceCore::FinishLocked(JobRecord* job) {
  job->state = JobState::kDone;
  job->finish_seq = ++finish_seq_;
  if (job->lease_bytes > 0) {
    lease_pool_.ReturnLeasedMemory(job->lease_bytes);
    job->lease_bytes = 0;
  }
}

void ServiceCore::WorkerLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    work_cv_.wait(lock,
                  [this] { return stopping_ || HasQueuedLocked(); });
    if (stopping_) return;  // queued jobs were cancelled by the destructor
    JobRecord* job = PickNextLocked();
    job->state = JobState::kRunning;
    ++running_;
    // The job's own cancel token makes every run governed (and therefore
    // cancellable) without touching the caller's budgets; the spec copy
    // keeps the record's spec immutable for Poll.
    JobSpec spec = job->spec;
    spec.exec.cancel = &job->cancel;
    lock.unlock();
    JobResult result = ExecuteJob(spec, &job->governor);
    lock.lock();
    job->result = std::move(result);
    FinishLocked(job);
    --running_;
    ++stats_.completed;
    done_cv_.notify_all();
  }
}

}  // namespace incognito
