#include "service/job_spec.h"

#include <algorithm>
#include <utility>

#include "core/ldiversity.h"
#include "core/minimality.h"
#include "core/recoder.h"
#include "models/koptimize.h"
#include "models/mondrian.h"
#include "relation/csv.h"
#include "robust/checkpoint.h"
#include "robust/fault_injector.h"
#include "service/problem_loader.h"

namespace incognito {
namespace {

using obs::JsonDouble;
using obs::JsonString;
using obs::JsonValue;

/// The wire spelling of an Incognito variant (the --variant flag values;
/// IncognitoVariantName gives the human display form instead).
const char* VariantWireName(IncognitoVariant variant) {
  switch (variant) {
    case IncognitoVariant::kBasic:
      return "basic";
    case IncognitoVariant::kSuperRoots:
      return "superroots";
    case IncognitoVariant::kCube:
      return "cube";
  }
  return "basic";
}

bool ParseVariantWireName(const std::string& text, IncognitoVariant* out) {
  for (IncognitoVariant v :
       {IncognitoVariant::kBasic, IncognitoVariant::kSuperRoots,
        IncognitoVariant::kCube}) {
    if (text == VariantWireName(v)) {
      *out = v;
      return true;
    }
  }
  return false;
}

const char* ResumeModeWireName(ResumeMode mode) {
  switch (mode) {
    case ResumeMode::kOff:
      return "off";
    case ResumeMode::kAuto:
      return "auto";
    case ResumeMode::kRequire:
      return "require";
  }
  return "off";
}

bool ParseResumeModeWireName(const std::string& text, ResumeMode* out) {
  for (ResumeMode m :
       {ResumeMode::kOff, ResumeMode::kAuto, ResumeMode::kRequire}) {
    if (text == ResumeModeWireName(m)) {
      *out = m;
      return true;
    }
  }
  return false;
}

int64_t Int64Field(const JsonValue& v) {
  return static_cast<int64_t>(v.NumberOr(0));
}

/// Fills the view-identity fields from a released view.
void FillView(const Table& view, JobResult* out) {
  std::string csv = ToCsvString(view);
  out->view_crc32 = Crc32(csv.data(), csv.size());
  out->view_rows = static_cast<int64_t>(view.num_rows());
}

/// Sorted canonical node strings (the run's own order is deterministic,
/// but sorting makes the contract independent of traversal order).
std::vector<std::string> NodeStrings(const std::vector<SubsetNode>& nodes,
                                     const QuasiIdentifier& qid) {
  std::vector<std::string> out;
  out.reserve(nodes.size());
  for (const SubsetNode& node : nodes) out.push_back(node.ToString(&qid));
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace

const char* JobModelName(JobModel model) {
  switch (model) {
    case JobModel::kKAnonymity:
      return "k-anonymity";
    case JobModel::kLDiversity:
      return "l-diversity";
    case JobModel::kKOptimize:
      return "k-optimize";
    case JobModel::kMondrian:
      return "mondrian";
  }
  return "k-anonymity";
}

bool ParseJobModel(const std::string& text, JobModel* model) {
  for (JobModel m : {JobModel::kKAnonymity, JobModel::kLDiversity,
                     JobModel::kKOptimize, JobModel::kMondrian}) {
    if (text == JobModelName(m)) {
      *model = m;
      return true;
    }
  }
  return false;
}

std::string JobSpecToJson(const JobSpec& spec) {
  std::string out = "{";
  out += "\"tenant\":" + JsonString(spec.tenant);
  out += ",\"input\":" + JsonString(spec.input);
  out += ",\"qid\":[";
  for (size_t i = 0; i < spec.qid.size(); ++i) {
    if (i > 0) out += ",";
    out += JsonString(spec.qid[i]);
  }
  out += "],\"hierarchies\":{";
  bool first = true;
  for (const auto& [col, hspec] : spec.hierarchies) {
    if (!first) out += ",";
    first = false;
    out += JsonString(col) + ":" + JsonString(hspec);
  }
  out += "},\"model\":" + JsonString(JobModelName(spec.model));
  out += ",\"k\":" + std::to_string(spec.k);
  out += ",\"l\":" + std::to_string(spec.l);
  out += ",\"sensitive\":" + JsonString(spec.sensitive_attribute);
  out += ",\"max_suppressed\":" + std::to_string(spec.max_suppressed);
  out += ",\"variant\":" + JsonString(VariantWireName(spec.variant));
  out += ",\"deadline_ms\":" + std::to_string(spec.exec.deadline_ms);
  out += ",\"memory_budget_bytes\":" +
         std::to_string(spec.exec.memory_budget_bytes);
  out += ",\"threads\":" + std::to_string(spec.exec.num_threads);
  out += ",\"schedule\":" +
         JsonString(SchedulingModeName(spec.exec.scheduling));
  out += ",\"substrate\":" +
         JsonString(SubstrateModeName(spec.exec.substrate));
  out += ",\"checkpoint\":" + JsonString(spec.exec.checkpoint.path);
  out += ",\"checkpoint_interval_ms\":" +
         std::to_string(spec.exec.checkpoint.interval_ms);
  out += ",\"resume\":" +
         JsonString(ResumeModeWireName(spec.exec.checkpoint.resume));
  out += std::string(",\"partial_ok\":") +
         (spec.partial_ok ? "true" : "false");
  out += "}";
  return out;
}

Result<JobSpec> JobSpecFromJson(const JsonValue& value) {
  if (!value.is_object()) {
    return Status::InvalidArgument("job spec must be a JSON object");
  }
  JobSpec spec;
  for (const auto& [key, v] : value.object) {
    if (key == "tenant") {
      spec.tenant = v.StringOr(spec.tenant);
    } else if (key == "input") {
      spec.input = v.StringOr("");
    } else if (key == "qid") {
      if (!v.is_array()) {
        return Status::InvalidArgument("\"qid\" must be an array of names");
      }
      for (const JsonValue& name : v.array) {
        spec.qid.push_back(name.StringOr(""));
      }
    } else if (key == "hierarchies") {
      if (!v.is_object()) {
        return Status::InvalidArgument(
            "\"hierarchies\" must be an object of COL:SPEC");
      }
      for (const auto& [col, hspec] : v.object) {
        spec.hierarchies[col] = hspec.StringOr("");
      }
    } else if (key == "model") {
      if (!ParseJobModel(v.StringOr(""), &spec.model)) {
        return Status::InvalidArgument(
            "bad \"model\" value '" + v.StringOr("") +
            "' (want k-anonymity, l-diversity, k-optimize, or mondrian)");
      }
    } else if (key == "k") {
      spec.k = Int64Field(v);
    } else if (key == "l") {
      spec.l = Int64Field(v);
    } else if (key == "sensitive") {
      spec.sensitive_attribute = v.StringOr("");
    } else if (key == "max_suppressed") {
      spec.max_suppressed = Int64Field(v);
    } else if (key == "variant") {
      if (!ParseVariantWireName(v.StringOr(""), &spec.variant)) {
        return Status::InvalidArgument(
            "bad \"variant\" value '" + v.StringOr("") +
            "' (want basic, superroots, or cube)");
      }
    } else if (key == "deadline_ms") {
      spec.exec.deadline_ms = Int64Field(v);
    } else if (key == "memory_budget_bytes") {
      spec.exec.memory_budget_bytes = Int64Field(v);
    } else if (key == "threads") {
      spec.exec.num_threads = static_cast<int>(Int64Field(v));
    } else if (key == "schedule") {
      if (!ParseSchedulingMode(v.StringOr(""), &spec.exec.scheduling)) {
        return Status::InvalidArgument(
            "bad \"schedule\" value '" + v.StringOr("") +
            "' (want pipelined or barrier)");
      }
    } else if (key == "substrate") {
      if (!ParseSubstrateMode(v.StringOr(""), &spec.exec.substrate)) {
        return Status::InvalidArgument(
            "bad \"substrate\" value '" + v.StringOr("") +
            "' (want hash, radix, or auto)");
      }
    } else if (key == "checkpoint") {
      spec.exec.checkpoint.path = v.StringOr("");
    } else if (key == "checkpoint_interval_ms") {
      spec.exec.checkpoint.interval_ms = Int64Field(v);
    } else if (key == "resume") {
      if (!ParseResumeModeWireName(v.StringOr(""),
                                   &spec.exec.checkpoint.resume)) {
        return Status::InvalidArgument(
            "bad \"resume\" value '" + v.StringOr("") +
            "' (want off, auto, or require)");
      }
    } else if (key == "partial_ok") {
      spec.partial_ok = v.is_bool() && v.b;
    } else {
      return Status::InvalidArgument("unknown job spec key \"" + key + "\"");
    }
  }
  if (spec.input.empty()) {
    return Status::InvalidArgument("job spec needs a non-empty \"input\"");
  }
  if (spec.qid.empty()) {
    return Status::InvalidArgument("job spec needs a non-empty \"qid\"");
  }
  return spec;
}

std::string JobResultToJson(const JobResult& result) {
  std::string out = "{";
  out += "\"status\":" + JsonString(StatusCodeName(result.status.code()));
  out += std::string(",\"partial\":") + (result.partial ? "true" : "false");
  out += ",\"nodes\":[";
  for (size_t i = 0; i < result.nodes.size(); ++i) {
    if (i > 0) out += ",";
    out += JsonString(result.nodes[i]);
  }
  out += "],\"completed_iterations\":" +
         std::to_string(result.completed_iterations);
  out += ",\"view_crc32\":" + std::to_string(result.view_crc32);
  out += ",\"view_rows\":" + std::to_string(result.view_rows);
  out += ",\"suppressed_tuples\":" + std::to_string(result.suppressed_tuples);
  out += ",\"cost\":" + JsonDouble(result.cost);
  out += ",\"num_partitions\":" + std::to_string(result.num_partitions);
  // Only the deterministic search counters: timing, governor activity, and
  // scheduler telemetry describe the run, not the answer, and would break
  // the daemon-vs-direct bit-identity contract.
  out += ",\"counters\":{";
  out += "\"nodes_checked\":" + std::to_string(result.stats.nodes_checked);
  out += ",\"nodes_marked\":" + std::to_string(result.stats.nodes_marked);
  out += ",\"table_scans\":" + std::to_string(result.stats.table_scans);
  out += ",\"rollups\":" + std::to_string(result.stats.rollups);
  out += ",\"freq_groups_built\":" +
         std::to_string(result.stats.freq_groups_built);
  out += ",\"candidate_nodes\":" +
         std::to_string(result.stats.candidate_nodes);
  out += "}}";
  return out;
}

JobResult ExecuteJob(const JobSpec& spec, ExecutionGovernor* governor) {
  JobResult out;
  if (INCOGNITO_FAULT_FIRED("service.job.run")) {
    out.status = Status::Internal("injected fault at service.job.run");
    return out;
  }
  Result<LoadedProblem> problem =
      LoadProblem(spec.input, spec.qid, spec.hierarchies);
  if (!problem.ok()) {
    out.status = problem.status();
    return out;
  }
  RunContext ctx = spec.exec.MakeContext(governor);
  AnonymizationConfig config;
  config.k = spec.k;
  config.max_suppressed = spec.max_suppressed;

  switch (spec.model) {
    case JobModel::kKAnonymity: {
      IncognitoOptions options;
      options.variant = spec.variant;
      PartialResult<IncognitoResult> r =
          RunIncognito(problem->table, problem->qid, config, options, ctx);
      out.status = r.status();
      out.partial = r.partial();
      if (r.hard_error()) return out;
      out.nodes = NodeStrings(r->anonymous_nodes, problem->qid);
      out.completed_iterations = r->completed_iterations;
      out.stats = r->stats;
      if (!r->anonymous_nodes.empty()) {
        SubsetNode minimal = MinimalByHeight(r->anonymous_nodes).front();
        Result<RecodeResult> view = ApplyFullDomainGeneralization(
            problem->table, problem->qid, minimal, config);
        if (!view.ok()) {
          out.status = view.status();
          out.partial = false;
          return out;
        }
        FillView(view->view, &out);
        out.suppressed_tuples = view->suppressed_tuples;
      }
      return out;
    }
    case JobModel::kLDiversity: {
      LDiversityConfig dconfig;
      dconfig.k = spec.k;
      dconfig.l = spec.l;
      dconfig.max_suppressed = spec.max_suppressed;
      dconfig.sensitive_attribute = spec.sensitive_attribute;
      PartialResult<LDiversityResult> r =
          RunLDiversityIncognito(problem->table, problem->qid, dconfig, ctx);
      out.status = r.status();
      out.partial = r.partial();
      if (r.hard_error()) return out;
      out.nodes = NodeStrings(r->diverse_nodes, problem->qid);
      out.completed_iterations = r->completed_iterations;
      out.stats = r->stats;
      if (!r->diverse_nodes.empty()) {
        SubsetNode minimal = MinimalByHeight(r->diverse_nodes).front();
        Result<DiverseRecodeResult> view = ApplyDiverseGeneralization(
            problem->table, problem->qid, minimal, dconfig);
        if (!view.ok()) {
          out.status = view.status();
          out.partial = false;
          return out;
        }
        FillView(view->view, &out);
        out.suppressed_tuples = view->suppressed_tuples;
      }
      return out;
    }
    case JobModel::kKOptimize: {
      PartialResult<KOptimizeResult> r =
          RunKOptimize(problem->table, problem->qid, config, {}, ctx);
      out.status = r.status();
      out.partial = r.partial();
      if (r.hard_error()) return out;
      // Both complete and partial releases carry a sound view (the
      // best-so-far cut set); the search effort doubles as the job's
      // progress measure.
      out.completed_iterations = r->nodes_visited;
      out.stats = r->stats;
      out.cost = r->cost;
      out.suppressed_tuples = r->suppressed_tuples;
      FillView(r->view, &out);
      return out;
    }
    case JobModel::kMondrian: {
      PartialResult<MondrianResult> r =
          RunMondrian(problem->table, problem->qid, config, ctx);
      out.status = r.status();
      out.partial = r.partial();
      if (r.hard_error()) return out;
      out.num_partitions = static_cast<int64_t>(r->num_partitions);
      out.completed_iterations = static_cast<int64_t>(r->num_partitions);
      out.stats = r->stats;
      FillView(r->view, &out);
      return out;
    }
  }
  out.status = Status::Internal("unknown job model");
  return out;
}

}  // namespace incognito
