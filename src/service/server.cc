#include "service/server.h"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "obs/json_util.h"
#include "robust/fault_injector.h"

namespace incognito {
namespace {

using obs::JsonString;
using obs::JsonValue;
using obs::ParseJson;

/// Reply assembly: every reply leads with the outcome contract so clients
/// can branch on "ok" / "exit_code" without parsing model-specific fields.
std::string ReplyHead(bool ok, StatusCode code) {
  std::string out = "{\"ok\":";
  out += ok ? "true" : "false";
  out += ",\"status\":" + JsonString(StatusCodeName(code));
  out += ",\"exit_code\":" + std::to_string(ExitCodeForStatus(code));
  return out;
}

std::string ErrorReply(const Status& status) {
  return ReplyHead(false, status.code()) +
         ",\"error\":" + JsonString(status.message()) + "}";
}

}  // namespace

Status WriteReplyLine(int fd, const std::string& json) {
  INCOGNITO_FAULT_POINT(
      "service.reply.write",
      Status::IOError("injected fault at service.reply.write"));
  std::string line = json + "\n";
  size_t written = 0;
  while (written < line.size()) {
    ssize_t n = ::write(fd, line.data() + written, line.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(std::string("reply write failed: ") +
                             std::strerror(errno));
    }
    written += static_cast<size_t>(n);
  }
  return Status::OK();
}

ServiceServer::ServiceServer(ServiceCore* core, std::string socket_path)
    : core_(core), socket_path_(std::move(socket_path)) {}

ServiceServer::~ServiceServer() { Stop(); }

Status ServiceServer::Start() {
  if (started_) return Status::FailedPrecondition("server already started");
  sockaddr_un addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sun_family = AF_UNIX;
  if (socket_path_.size() >= sizeof(addr.sun_path)) {
    return Status::InvalidArgument("socket path too long: " + socket_path_);
  }
  std::memcpy(addr.sun_path, socket_path_.c_str(), socket_path_.size() + 1);

  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::IOError(std::string("socket() failed: ") +
                           std::strerror(errno));
  }
  ::unlink(socket_path_.c_str());  // stale socket from a crashed daemon
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    Status failed = Status::IOError("bind(" + socket_path_ +
                                    ") failed: " + std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return failed;
  }
  if (::listen(listen_fd_, 16) != 0) {
    Status failed = Status::IOError(std::string("listen() failed: ") +
                                    std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return failed;
  }
  if (::pipe(stop_pipe_) != 0) {
    Status failed = Status::IOError(std::string("pipe() failed: ") +
                                    std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return failed;
  }
  started_ = true;
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void ServiceServer::Stop() {
  if (!started_ || stopping_.exchange(true)) {
    return;
  }
  // Wake the accept loop, then unblock any connection reads.
  char byte = 0;
  (void)!::write(stop_pipe_[1], &byte, 1);
  accept_thread_.join();
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    for (int fd : open_fds_) ::shutdown(fd, SHUT_RDWR);
  }
  std::vector<std::thread> threads;
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    threads.swap(conn_threads_);
  }
  for (std::thread& t : threads) t.join();
  ::close(listen_fd_);
  listen_fd_ = -1;
  ::close(stop_pipe_[0]);
  ::close(stop_pipe_[1]);
  stop_pipe_[0] = stop_pipe_[1] = -1;
  ::unlink(socket_path_.c_str());
}

void ServiceServer::AcceptLoop() {
  for (;;) {
    pollfd fds[2];
    fds[0] = {listen_fd_, POLLIN, 0};
    fds[1] = {stop_pipe_[0], POLLIN, 0};
    if (::poll(fds, 2, -1) < 0) {
      if (errno == EINTR) continue;
      return;
    }
    if (fds[1].revents != 0) return;  // Stop() signalled
    if ((fds[0].revents & POLLIN) == 0) continue;
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    std::lock_guard<std::mutex> lock(conn_mu_);
    open_fds_.insert(fd);
    conn_threads_.emplace_back([this, fd] { HandleConnection(fd); });
  }
}

void ServiceServer::HandleConnection(int fd) {
  std::string buffer;
  char chunk[4096];
  for (;;) {
    ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;  // client closed (or Stop() shut the socket down)
    buffer.append(chunk, static_cast<size_t>(n));
    size_t newline;
    while ((newline = buffer.find('\n')) != std::string::npos) {
      std::string line = buffer.substr(0, newline);
      buffer.erase(0, newline + 1);
      if (line.empty()) continue;
      std::string reply = HandleRequest(line);
      Status written = WriteReplyLine(fd, reply);
      if (!written.ok()) {
        // A torn reply is worse than a dropped connection: the client
        // re-connects and re-polls (every op is idempotent or keyed).
        ::shutdown(fd, SHUT_RDWR);
        std::lock_guard<std::mutex> lock(conn_mu_);
        open_fds_.erase(fd);
        ::close(fd);
        return;
      }
    }
  }
  std::lock_guard<std::mutex> lock(conn_mu_);
  open_fds_.erase(fd);
  ::close(fd);
}

std::string ServiceServer::HandleRequest(const std::string& line) {
  JsonValue request;
  std::string error;
  if (!ParseJson(line, &request, &error)) {
    return ErrorReply(Status::InvalidArgument("bad request JSON: " + error));
  }
  const JsonValue* op_value = request.Find("op");
  std::string op = op_value ? op_value->StringOr("") : "";
  if (op == "ping") {
    return ReplyHead(true, StatusCode::kOk) + "}";
  }
  if (op == "submit") {
    const JsonValue* spec_value = request.Find("spec");
    if (spec_value == nullptr) {
      return ErrorReply(
          Status::InvalidArgument("submit needs a \"spec\" object"));
    }
    Result<JobSpec> spec = JobSpecFromJson(*spec_value);
    if (!spec.ok()) return ErrorReply(spec.status());
    Result<JobId> id = core_->Submit(std::move(spec).value());
    if (!id.ok()) return ErrorReply(id.status());
    return ReplyHead(true, StatusCode::kOk) +
           ",\"id\":" + std::to_string(id.value()) + "}";
  }
  // The remaining ops all address a job by id.
  const JsonValue* id_value = request.Find("id");
  JobId id = id_value ? static_cast<JobId>(id_value->NumberOr(0)) : 0;
  if (op == "status") {
    Result<JobSnapshot> snapshot = core_->Poll(id);
    if (!snapshot.ok()) return ErrorReply(snapshot.status());
    std::string out = ReplyHead(true, StatusCode::kOk);
    out += ",\"id\":" + std::to_string(snapshot->id);
    out += ",\"tenant\":" + JsonString(snapshot->tenant);
    out += ",\"model\":" + JsonString(JobModelName(snapshot->model));
    out += ",\"state\":" + JsonString(JobStateName(snapshot->state));
    out += std::string(",\"cancel_requested\":") +
           (snapshot->cancel_requested ? "true" : "false");
    out += ",\"memory_used_bytes\":" +
           std::to_string(snapshot->memory_used_bytes);
    out += ",\"memory_peak_bytes\":" +
           std::to_string(snapshot->memory_peak_bytes);
    out += ",\"finish_seq\":" + std::to_string(snapshot->finish_seq);
    return out + "}";
  }
  if (op == "result") {
    const JsonValue* wait = request.Find("wait");
    Result<JobResult> result = (wait != nullptr && wait->is_bool() && wait->b)
                                   ? core_->Wait(id)
                                   : core_->FetchResult(id);
    if (!result.ok()) return ErrorReply(result.status());
    // The job-level outcome contract: "status" always carries the job's
    // real status code, but a partial release the spec accepted with
    // partial_ok is a success for ok/exit-code purposes.
    Result<JobSnapshot> snapshot = core_->Poll(id);
    bool accepted = result->status.ok() ||
                    (result->partial && snapshot.ok() &&
                     snapshot->partial_ok);
    StatusCode job_code = result->status.code();
    std::string out = "{\"ok\":";
    out += accepted ? "true" : "false";
    out += ",\"status\":" + JsonString(StatusCodeName(job_code));
    out += ",\"exit_code\":" +
           std::to_string(accepted ? 0 : ExitCodeForStatus(job_code));
    out += ",\"id\":" + std::to_string(id);
    out += std::string(",\"partial\":") + (result->partial ? "true" : "false");
    if (!result->status.ok()) {
      out += ",\"error\":" + JsonString(result->status.message());
    }
    out += ",\"result\":" + JsonString(JobResultToJson(result.value()));
    return out + "}";
  }
  if (op == "cancel") {
    Status cancelled = core_->Cancel(id);
    if (!cancelled.ok()) return ErrorReply(cancelled);
    return ReplyHead(true, StatusCode::kOk) + "}";
  }
  if (op == "drain") {
    core_->Drain();
    return ReplyHead(true, StatusCode::kOk) + "}";
  }
  if (op == "shutdown") {
    shutdown_requested_.store(true, std::memory_order_release);
    return ReplyHead(true, StatusCode::kOk) + "}";
  }
  return ErrorReply(Status::InvalidArgument(
      "unknown op '" + op +
      "' (want ping, submit, status, result, cancel, drain, or shutdown)"));
}

}  // namespace incognito
