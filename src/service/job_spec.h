#ifndef INCOGNITO_SERVICE_JOB_SPEC_H_
#define INCOGNITO_SERVICE_JOB_SPEC_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/checker.h"
#include "core/exec_profile.h"
#include "core/incognito.h"
#include "obs/json_util.h"
#include "robust/governor.h"

namespace incognito {

/// The anonymization model a job runs. The four models cover the paper's
/// taxonomy corners the service exposes: full-domain Incognito search,
/// its ℓ-diversity extension, the optimal single-dimension cut search, and
/// the multi-dimensional Mondrian partitioner.
enum class JobModel {
  kKAnonymity,  ///< full-domain Incognito enumeration (core/incognito.h)
  kLDiversity,  ///< ℓ-diverse Incognito (core/ldiversity.h)
  kKOptimize,   ///< optimal 1-D cut search (models/koptimize.h)
  kMondrian,    ///< greedy multi-dimensional splits (models/mondrian.h)
};

/// Canonical wire spelling ("k-anonymity", "l-diversity", "k-optimize",
/// "mondrian").
const char* JobModelName(JobModel model);

/// Parses a wire spelling; false on anything else.
bool ParseJobModel(const std::string& text, JobModel* model);

/// One anonymization job: WHAT to run (dataset reference, model, privacy
/// parameters) plus HOW to run it (the ExecProfile: deadline, memory
/// lease, thread share, scheduling, substrate, checkpoint policy). This is
/// the service's public job description — the same JobSpec produces
/// bit-identical results whether executed through the daemon, the socket
/// client's run-direct mode, or a direct ExecuteJob call.
struct JobSpec {
  /// Tenant the job is accounted to (admission quotas and weighted-fair
  /// scheduling key on it; see service/service.h).
  std::string tenant = "default";

  /// Dataset reference: ".inct" binary table or CSV path, resolved by
  /// service/problem_loader.h.
  std::string input;
  /// Quasi-identifier attribute names, in lattice order.
  std::vector<std::string> qid;
  /// Per-column hierarchy specs (problem_loader.h grammar).
  std::map<std::string, std::string> hierarchies;

  JobModel model = JobModel::kKAnonymity;
  int64_t k = 2;
  /// ℓ for kLDiversity (ignored by the other models).
  int64_t l = 2;
  /// Sensitive attribute for kLDiversity.
  std::string sensitive_attribute;
  int64_t max_suppressed = 0;
  /// Incognito variant for kKAnonymity.
  IncognitoVariant variant = IncognitoVariant::kBasic;

  /// Execution profile: budgets, threads, scheduling, substrate,
  /// checkpoint policy. The daemon points exec.cancel at the job's own
  /// token before running so every job is cancellable.
  ExecProfile exec;

  /// When false, a budget trip is reported as a failure (its governance
  /// status and exit code); when true, the sound partial release is
  /// returned instead, flagged partial.
  bool partial_ok = false;
};

/// Serializes a spec to one JSON object (the "submit" op's "spec" field).
std::string JobSpecToJson(const JobSpec& spec);

/// Parses the wire form produced by JobSpecToJson (unknown keys are
/// rejected so client/server drift fails loudly).
Result<JobSpec> JobSpecFromJson(const obs::JsonValue& value);

/// What a job produced. `status`/`partial` carry the outcome contract of
/// PartialResult: complete runs have an OK status; partial runs carry the
/// governance status that stopped them plus a sound partial release; hard
/// errors carry the error and no release.
struct JobResult {
  Status status = Status::OK();
  bool partial = false;

  /// Sorted ToString forms of the proven nodes (anonymous_nodes or
  /// diverse_nodes; empty for the partitioning models).
  std::vector<std::string> nodes;
  int64_t completed_iterations = 0;

  /// Released view identity: CRC-32 (IEEE 802.3) over the view's CSV
  /// serialization plus its row count. Zero rows and CRC 0 when the model
  /// released nothing (hard error, or a partial with no proven node).
  uint32_t view_crc32 = 0;
  int64_t view_rows = 0;
  int64_t suppressed_tuples = 0;

  /// Model-specific outputs: k-Optimize's minimized cost, Mondrian's
  /// partition count (zero for the other models).
  double cost = 0;
  int64_t num_partitions = 0;

  AlgorithmStats stats;
};

/// Canonical JSON for a result. Deliberately excludes every timing and
/// telemetry field (total_seconds, governor activity, scheduler counters)
/// so daemon-vs-direct runs of the same JobSpec serialize bit-for-bit
/// identically; keys are emitted in fixed order.
std::string JobResultToJson(const JobResult& result);

/// Executes one job start-to-finish: resolves the dataset reference,
/// assembles the RunContext from spec.exec against `governor` (the
/// caller's stack or record slot — armed only when the profile is
/// governed), dispatches on spec.model, and folds the model's
/// PartialResult into a JobResult. Shared by the daemon's workers
/// (service/service.cc) and the client's run-direct mode — the
/// differential tests pin the two paths bit-identical.
JobResult ExecuteJob(const JobSpec& spec, ExecutionGovernor* governor);

}  // namespace incognito

#endif  // INCOGNITO_SERVICE_JOB_SPEC_H_
