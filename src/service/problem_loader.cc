#include "service/problem_loader.h"

#include <cstdint>
#include <utility>

#include "common/strings.h"
#include "hierarchy/builders.h"
#include "hierarchy/csv_hierarchy.h"
#include "relation/binary_io.h"
#include "relation/csv.h"

namespace incognito {
namespace {

bool ParseInt64(const std::string& text, int64_t* out) {
  if (text.empty()) return false;
  char* end = nullptr;
  long long v = strtoll(text.c_str(), &end, 10);
  if (end == nullptr || *end != '\0') return false;
  *out = v;
  return true;
}

}  // namespace

Result<ValueHierarchy> BuildHierarchyFromSpec(const std::string& column,
                                              const std::string& spec,
                                              const Dictionary& dict) {
  std::vector<std::string> parts = Split(spec, ':');
  const std::string& kind = parts[0];
  if (kind == "file") {
    if (parts.size() != 2) {
      return Status::InvalidArgument("file spec needs a path: file:PATH");
    }
    return ReadHierarchyCsv(column, parts[1], dict);
  }
  if (kind == "suppress") {
    return BuildSuppressionHierarchy(column, dict);
  }
  if (kind == "interval") {
    std::vector<int64_t> widths;
    for (size_t i = 1; i < parts.size(); ++i) {
      int64_t w = 0;
      if (!ParseInt64(parts[i], &w)) {
        return Status::InvalidArgument("bad interval width '" + parts[i] +
                                       "'");
      }
      widths.push_back(w);
    }
    if (widths.empty()) {
      return Status::InvalidArgument("interval spec needs widths");
    }
    return BuildIntervalHierarchy(column, dict, widths);
  }
  if (kind == "digits") {
    if (parts.size() != 3) {
      return Status::InvalidArgument("digits spec is digits:NUM:LEVELS");
    }
    int64_t num = 0, levels = 0;
    if (!ParseInt64(parts[1], &num) || !ParseInt64(parts[2], &levels)) {
      return Status::InvalidArgument("bad digits spec '" + spec + "'");
    }
    return BuildDigitRoundingHierarchy(column, dict,
                                       static_cast<size_t>(num),
                                       static_cast<size_t>(levels));
  }
  if (kind == "date") {
    return BuildDateHierarchy(column, dict);
  }
  return Status::InvalidArgument("unknown hierarchy spec kind '" + kind +
                                 "'");
}

Result<LoadedProblem> LoadProblem(
    const std::string& input, const std::vector<std::string>& qid_names,
    const std::map<std::string, std::string>& specs) {
  if (input.empty()) return Status::InvalidArgument("input is required");
  Result<Table> table = input.size() > 5 &&
                                input.substr(input.size() - 5) == ".inct"
                            ? ReadTableBinary(input)
                            : ReadCsv(input);
  if (!table.ok()) return table.status();

  if (qid_names.empty() || qid_names[0].empty()) {
    return Status::InvalidArgument(
        "a non-empty quasi-identifier attribute list is required");
  }
  std::vector<std::pair<std::string, ValueHierarchy>> hierarchies;
  for (const std::string& name : qid_names) {
    Result<size_t> col = table->schema().ColumnIndex(name);
    if (!col.ok()) return col.status();
    auto it = specs.find(name);
    if (it == specs.end()) {
      return Status::InvalidArgument(
          "no hierarchy spec for quasi-identifier attribute '" + name + "'");
    }
    Result<ValueHierarchy> h = BuildHierarchyFromSpec(
        name, it->second, table->dictionary(col.value()));
    if (!h.ok()) return h.status();
    hierarchies.emplace_back(name, std::move(h).value());
  }
  Result<QuasiIdentifier> qid =
      QuasiIdentifier::Create(table.value(), std::move(hierarchies));
  if (!qid.ok()) return qid.status();
  LoadedProblem out;
  out.table = std::move(table).value();
  out.qid = std::move(qid).value();
  return out;
}

}  // namespace incognito
