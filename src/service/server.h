#ifndef INCOGNITO_SERVICE_SERVER_H_
#define INCOGNITO_SERVICE_SERVER_H_

#include <atomic>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "service/service.h"

namespace incognito {

/// Writes one protocol reply (`json` + '\n') to `fd`, retrying short
/// writes. Fault site "service.reply.write" (IOError); a failed write
/// closes the connection rather than leaving a partial line on the wire.
Status WriteReplyLine(int fd, const std::string& json);

/// Newline-delimited-JSON front-end over a Unix-domain socket: each
/// request is one JSON object on one line, each reply is one JSON object
/// on one line, connections are handled on their own thread and may issue
/// any number of requests. docs/SERVICE.md gives the protocol grammar;
/// the request ops are:
///
///   {"op":"ping"}                          liveness probe
///   {"op":"submit","spec":{...}}           admit a JobSpec (job_spec.h)
///   {"op":"status","id":N}                 JobSnapshot of a job
///   {"op":"result","id":N[,"wait":true]}   fetch (or block for) a result
///   {"op":"cancel","id":N}                 cancel a job
///   {"op":"drain"}                         graceful drain (blocks)
///   {"op":"shutdown"}                      request daemon shutdown
///
/// Every reply carries "ok" plus the machine-readable outcome contract:
/// "status" (common/status.h StatusCodeName) and "exit_code"
/// (ExitCodeForStatus) — for the "result" op these describe the JOB's
/// outcome (partial releases accepted by the spec's partial_ok map to
/// exit code 0), for every other op the op's own outcome.
class ServiceServer {
 public:
  /// `core` must outlive the server. Nothing is bound until Start().
  ServiceServer(ServiceCore* core, std::string socket_path);
  ~ServiceServer();

  ServiceServer(const ServiceServer&) = delete;
  ServiceServer& operator=(const ServiceServer&) = delete;

  /// Binds the socket (unlinking any stale file at the path), starts
  /// listening, and spawns the accept loop.
  Status Start();

  /// Stops accepting, shuts down open connections, joins every thread,
  /// and unlinks the socket file. Idempotent.
  void Stop();

  /// True once a client issued {"op":"shutdown"} — the daemon's serve
  /// loop polls this alongside its signal flag.
  bool ShutdownRequested() const {
    return shutdown_requested_.load(std::memory_order_acquire);
  }

  const std::string& socket_path() const { return socket_path_; }

 private:
  void AcceptLoop();
  void HandleConnection(int fd);
  /// Dispatches one request line; returns the reply JSON line.
  std::string HandleRequest(const std::string& line);

  ServiceCore* const core_;
  const std::string socket_path_;
  int listen_fd_ = -1;
  int stop_pipe_[2] = {-1, -1};
  std::thread accept_thread_;
  std::atomic<bool> shutdown_requested_{false};
  std::atomic<bool> stopping_{false};
  bool started_ = false;

  std::mutex conn_mu_;
  std::set<int> open_fds_;
  std::vector<std::thread> conn_threads_;
};

}  // namespace incognito

#endif  // INCOGNITO_SERVICE_SERVER_H_
