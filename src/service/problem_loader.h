#ifndef INCOGNITO_SERVICE_PROBLEM_LOADER_H_
#define INCOGNITO_SERVICE_PROBLEM_LOADER_H_

#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/quasi_identifier.h"
#include "hierarchy/hierarchy.h"
#include "relation/table.h"

namespace incognito {

/// A table plus its assembled quasi-identifier — everything a Run* entry
/// point needs besides the per-model configuration. This is the one
/// dataset-reference resolution shared by the CLI (tools/incognito_cli.cpp),
/// the daemon's job executor (service/job_spec.h), and the client's
/// run-direct mode, so "the same JobSpec" is guaranteed to mean the same
/// table and hierarchies everywhere.
struct LoadedProblem {
  Table table;
  QuasiIdentifier qid;
};

/// Builds one hierarchy from a spec string (the --hierarchies grammar and
/// the JobSpec "hierarchies" field):
///   file:PATH            load an ARX-style hierarchy CSV (';'-separated)
///   suppress             one-level suppression to '*'
///   interval:W1:W2:...   nested integer ranges plus a '*' top
///   digits:NUM:LEVELS    fixed-width digit rounding (e.g. digits:5:3)
///   date                 YYYY-MM-DD → YYYY-MM → YYYY → '*'
Result<ValueHierarchy> BuildHierarchyFromSpec(const std::string& column,
                                              const std::string& spec,
                                              const Dictionary& dict);

/// Loads `input` (".inct" → the library's binary table format, anything
/// else → CSV) and assembles the quasi-identifier from `qid_names` and the
/// per-column hierarchy `specs`. Every QID attribute must have a spec.
Result<LoadedProblem> LoadProblem(
    const std::string& input, const std::vector<std::string>& qid_names,
    const std::map<std::string, std::string>& specs);

}  // namespace incognito

#endif  // INCOGNITO_SERVICE_PROBLEM_LOADER_H_
