#ifndef INCOGNITO_SERVICE_SERVICE_H_
#define INCOGNITO_SERVICE_SERVICE_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "robust/governor.h"
#include "service/job_spec.h"

namespace incognito {

/// Monotone per-core job identifier (1-based; 0 is never issued).
using JobId = int64_t;

/// Lifecycle of an admitted job. Queued jobs wait in their tenant's FIFO;
/// running jobs execute on a worker; done jobs hold their JobResult
/// forever (records are kept until the core is destroyed). Rejected
/// submissions never get a state — Submit returns the rejection status.
enum class JobState { kQueued, kRunning, kDone };

/// Wire spelling ("queued" / "running" / "done").
const char* JobStateName(JobState state);

/// A point-in-time view of one job, safe to take while the job runs: the
/// memory gauges read the job governor's atomics and everything else is
/// copied under the core's lock (never from the worker mid-run).
struct JobSnapshot {
  JobId id = 0;
  std::string tenant;
  JobModel model = JobModel::kKAnonymity;
  JobState state = JobState::kQueued;
  bool cancel_requested = false;
  /// The spec's partial_ok (the front-end folds it into the exit code a
  /// partial release maps to).
  bool partial_ok = false;
  /// Accounted bytes currently charged / high-water mark of the job's own
  /// governor (zero while queued or for ungoverned profiles).
  int64_t memory_used_bytes = 0;
  int64_t memory_peak_bytes = 0;
  /// Completion order (1, 2, ... in the order jobs finished); 0 until
  /// done. The fairness tests and the load bench key on this.
  int64_t finish_seq = 0;
};

/// Admission and scheduling policy for a ServiceCore.
struct ServiceConfig {
  /// Worker threads started by the constructor. Zero is valid and means
  /// "admit but do not execute" until StartWorkers is called — the tests
  /// and the load bench use that to stage deterministic queue states.
  int num_workers = 2;
  /// Global cap on QUEUED jobs (running jobs do not count). A submit over
  /// this cap is rejected with ResourceExhausted — the documented
  /// backpressure signal; clients retry after draining their own backlog.
  size_t queue_depth = 64;
  /// Per-tenant cap on queued jobs, the first quota checked: one tenant
  /// flooding its queue hits its own wall before the global one.
  size_t per_tenant_queue_depth = 16;
  /// Service-wide memory lease pool (0 = unlimited). Every admitted job
  /// leases its memory budget (or default_job_lease_bytes when the spec
  /// sets none) from this pool for its queued+running lifetime; a submit
  /// that cannot lease is rejected with ResourceExhausted.
  int64_t memory_limit_bytes = 0;
  /// Lease taken for jobs whose ExecProfile sets no memory budget.
  int64_t default_job_lease_bytes = 16ll << 20;
  /// Weighted-fair shares across tenants (stride scheduling); tenants not
  /// listed get weight 1. Higher weight = proportionally more dispatches
  /// under contention.
  std::map<std::string, double> tenant_weights;
};

/// Monotone admission/outcome counters (all-time, copied under the lock).
struct ServiceStats {
  int64_t submitted = 0;
  int64_t admitted = 0;
  int64_t rejected_draining = 0;
  int64_t rejected_queue_full = 0;
  int64_t rejected_tenant_quota = 0;
  int64_t rejected_memory = 0;
  int64_t cancelled = 0;
  int64_t completed = 0;
};

/// The resident multi-tenant anonymization pipeline: admission control in
/// front of per-tenant FIFO queues, a stride (weighted-fair) scheduler
/// across tenants, and a worker pool executing jobs via ExecuteJob
/// (service/job_spec.h). This is the in-process form of the service; the
/// socket front-end (service/server.h) is a thin protocol adapter over it.
///
/// Isolation properties:
///  - Each job runs against its OWN ExecutionGovernor and CancelToken, so
///    one job's budget trip or cancellation never touches another's.
///  - FIFO within a tenant, stride scheduling across tenants: a tenant
///    with a flooded queue cannot starve another tenant's dispatches.
///  - Admission is bounded three ways (global queue depth, per-tenant
///    quota, memory lease pool); every rejection is ResourceExhausted,
///    the protocol's documented backpressure code.
///
/// All methods are thread-safe.
class ServiceCore {
 public:
  explicit ServiceCore(const ServiceConfig& config);
  /// Stops admission, cancels every queued and running job, and joins the
  /// workers. Use Drain() first for a graceful shutdown.
  ~ServiceCore();

  ServiceCore(const ServiceCore&) = delete;
  ServiceCore& operator=(const ServiceCore&) = delete;

  /// Admits a job or rejects it: FailedPrecondition while draining,
  /// ResourceExhausted when a queue/quota/lease bound is hit (fault site
  /// "service.admit" precedes the bound checks).
  Result<JobId> Submit(JobSpec spec);

  /// Point-in-time snapshot; NotFound for an unknown id.
  Result<JobSnapshot> Poll(JobId id) const;

  /// Blocks until the job is done and returns its result.
  Result<JobResult> Wait(JobId id);

  /// The result of a done job; FailedPrecondition while it is still
  /// queued or running, NotFound for an unknown id.
  Result<JobResult> FetchResult(JobId id) const;

  /// Cancels a job. Queued jobs complete immediately with a Cancelled
  /// result; running jobs get their token flipped and unwind at the next
  /// governor checkpoint into their model's documented sound partial.
  /// Cancelling a done job is a no-op.
  Status Cancel(JobId id);

  /// Graceful drain: stops admission (subsequent submits fail with
  /// FailedPrecondition) and blocks until every admitted job — running
  /// AND queued — has completed. The SIGTERM path of the daemon.
  void Drain();

  /// Starts `n` additional worker threads (used with num_workers = 0 to
  /// stage a queue before execution begins).
  void StartWorkers(int n);

  ServiceStats stats() const;

 private:
  struct JobRecord {
    JobId id = 0;
    JobSpec spec;
    JobState state = JobState::kQueued;
    bool cancel_requested = false;
    int64_t lease_bytes = 0;
    int64_t finish_seq = 0;
    CancelToken cancel;
    ExecutionGovernor governor;
    JobResult result;
  };

  /// One tenant's FIFO plus its stride-scheduler account: pass advances
  /// by stride = kStrideScale / weight per dispatch, and the scheduler
  /// always dispatches the non-empty tenant with the smallest pass.
  struct TenantQueue {
    std::deque<JobRecord*> queue;
    double weight = 1;
    double pass = 0;
  };

  void WorkerLoop();
  /// Weighted-fair pick; requires at least one queued job. Advances the
  /// winning tenant's pass and the virtual time.
  JobRecord* PickNextLocked();
  bool HasQueuedLocked() const { return queued_ > 0; }
  /// Marks a job finished under the lock and releases its lease.
  void FinishLocked(JobRecord* job);

  const ServiceConfig config_;
  /// Admission-side lease pool (memory_limit_bytes); only its thread-safe
  /// shard interface is used.
  ExecutionGovernor lease_pool_;

  mutable std::mutex mu_;
  std::condition_variable work_cv_;  ///< workers wait for queued jobs
  std::condition_variable done_cv_;  ///< Wait/Drain wait for completions
  std::map<JobId, std::unique_ptr<JobRecord>> jobs_;
  std::map<std::string, TenantQueue> tenants_;
  std::vector<std::thread> workers_;
  ServiceStats stats_;
  JobId next_id_ = 1;
  size_t queued_ = 0;
  int running_ = 0;
  int64_t finish_seq_ = 0;
  /// Stride-scheduler virtual time: pass of the most recent dispatch.
  /// Tenants whose queue goes non-empty re-enter at this point, so an
  /// idle tenant cannot bank credit against busy ones.
  double virtual_time_ = 0;
  bool draining_ = false;
  bool stopping_ = false;
};

}  // namespace incognito

#endif  // INCOGNITO_SERVICE_SERVICE_H_
