#ifndef INCOGNITO_COMMON_STATUS_H_
#define INCOGNITO_COMMON_STATUS_H_

#include <cassert>
#include <string>
#include <utility>

namespace incognito {

/// Error codes used across the library. Modeled on the RocksDB/Arrow Status
/// idiom: functions that can fail return a Status (or a Result<T>, below)
/// instead of throwing exceptions across the public API boundary.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kFailedPrecondition,
  kInternal,
  kIOError,
  kNotSupported,
  // Resource-governance codes (see src/robust/governor.h): a cooperative
  // budget tripped and the operation stopped early with a partial result.
  kDeadlineExceeded,
  kResourceExhausted,
  kCancelled,
};

/// True for the codes an ExecutionGovernor produces when a time, memory,
/// or cancellation budget trips. Operations returning one of these stopped
/// cleanly and may carry a valid partial result (see
/// src/robust/partial_result.h); every other non-OK code is a hard error.
constexpr bool IsResourceGovernance(StatusCode code) {
  return code == StatusCode::kDeadlineExceeded ||
         code == StatusCode::kResourceExhausted ||
         code == StatusCode::kCancelled;
}

/// The canonical name of a code, e.g. "InvalidArgument". This is the single
/// source of truth for every textual spelling of a StatusCode: ToString
/// prefixes messages with it, the CLI prints it next to its exit code, and
/// the service wire protocol (docs/SERVICE.md) carries it in the "status"
/// field of every reply.
const char* StatusCodeName(StatusCode code);

/// Inverse of StatusCodeName: parses a canonical code name back into its
/// StatusCode. Returns false (leaving *code untouched) for unknown names.
/// Clients of the NDJSON service protocol use this to recover the typed
/// code from a reply's "status" string.
bool StatusCodeFromName(const std::string& name, StatusCode* code);

/// Maps a code to the process exit-code contract shared by incognito_cli
/// and the service tools (docs/ROBUSTNESS.md, docs/SERVICE.md):
///   0  success            3  invalid input / bad flag value
///   1  other failure      4  I/O error
///   2  usage error        5  deadline/memory/cancel budget tripped
/// Usage errors (2) are not a Status condition — callers return that code
/// directly when argument parsing fails before any Status exists.
int ExitCodeForStatus(StatusCode code);

/// A Status encapsulates the success or failure of an operation, with a
/// machine-readable code and a human-readable message.
///
/// Usage:
///   Status s = table.AppendRow(row);
///   if (!s.ok()) return s;
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  /// Factory functions, one per error code.
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(StatusCode::kNotSupported, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }

  /// Returns true iff the status indicates success.
  bool ok() const { return code_ == StatusCode::kOk; }

  StatusCode code() const { return code_; }

  /// The error message; empty for OK statuses.
  const std::string& message() const { return message_; }

  /// Human-readable representation, e.g. "InvalidArgument: bad column".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_;
  std::string message_;
};

/// Result<T> is either a value of type T or an error Status. It is the
/// return type of functions that produce a value but can fail.
///
/// Usage:
///   Result<Table> r = Table::FromCsv(path);
///   if (!r.ok()) return r.status();
///   Table t = std::move(r).value();
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (success).
  Result(T value) : status_(Status::OK()), value_(std::move(value)) {}
  /// Implicit construction from a non-OK status (failure).
  Result(Status status) : status_(std::move(status)) {
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  /// Accessors require ok(); checked with assert in debug builds.
  const T& value() const& {
    assert(ok());
    return value_;
  }
  T& value() & {
    assert(ok());
    return value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  T value_{};
};

/// Propagates a non-OK status out of the enclosing function.
#define INCOGNITO_RETURN_IF_ERROR(expr)        \
  do {                                         \
    ::incognito::Status _st = (expr);          \
    if (!_st.ok()) return _st;                 \
  } while (0)

}  // namespace incognito

#endif  // INCOGNITO_COMMON_STATUS_H_
