#ifndef INCOGNITO_COMMON_STRINGS_H_
#define INCOGNITO_COMMON_STRINGS_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace incognito {

/// Joins the elements of `parts` with `sep` between them.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Splits `s` on the single character `sep`. Empty fields are preserved;
/// an empty input yields a single empty field.
std::vector<std::string> Split(std::string_view s, char sep);

/// Removes leading and trailing ASCII whitespace.
std::string_view StripWhitespace(std::string_view s);

/// printf-style formatting into a std::string.
std::string StringPrintf(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Parses a signed 64-bit integer; returns false on malformed input or
/// trailing garbage.
bool ParseInt64(std::string_view s, int64_t* out);

/// Parses a double; returns false on malformed input or trailing garbage.
bool ParseDouble(std::string_view s, double* out);

}  // namespace incognito

#endif  // INCOGNITO_COMMON_STRINGS_H_
