#include "common/status.h"

namespace incognito {

namespace {

/// The one table tying each code to its canonical wire name and its
/// process exit code (see ExitCodeForStatus in the header). Every textual
/// or numeric rendering of a StatusCode — Status::ToString, the CLI's exit
/// codes, the service protocol's "status" field — derives from this table;
/// do not grow parallel copies elsewhere.
struct CodeEntry {
  StatusCode code;
  const char* name;
  int exit_code;
};

constexpr CodeEntry kCodeTable[] = {
    {StatusCode::kOk, "OK", 0},
    {StatusCode::kInvalidArgument, "InvalidArgument", 3},
    {StatusCode::kNotFound, "NotFound", 3},
    {StatusCode::kAlreadyExists, "AlreadyExists", 3},
    {StatusCode::kOutOfRange, "OutOfRange", 3},
    {StatusCode::kFailedPrecondition, "FailedPrecondition", 3},
    {StatusCode::kInternal, "Internal", 1},
    {StatusCode::kIOError, "IOError", 4},
    {StatusCode::kNotSupported, "NotSupported", 3},
    {StatusCode::kDeadlineExceeded, "DeadlineExceeded", 5},
    {StatusCode::kResourceExhausted, "ResourceExhausted", 5},
    {StatusCode::kCancelled, "Cancelled", 5},
};

const CodeEntry* FindEntry(StatusCode code) {
  for (const CodeEntry& entry : kCodeTable) {
    if (entry.code == code) return &entry;
  }
  return nullptr;
}

}  // namespace

const char* StatusCodeName(StatusCode code) {
  const CodeEntry* entry = FindEntry(code);
  return entry ? entry->name : "Unknown";
}

bool StatusCodeFromName(const std::string& name, StatusCode* code) {
  for (const CodeEntry& entry : kCodeTable) {
    if (name == entry.name) {
      *code = entry.code;
      return true;
    }
  }
  return false;
}

int ExitCodeForStatus(StatusCode code) {
  const CodeEntry* entry = FindEntry(code);
  return entry ? entry->exit_code : 1;
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace incognito
