#ifndef INCOGNITO_COMMON_RANDOM_H_
#define INCOGNITO_COMMON_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace incognito {

/// Deterministic 64-bit PRNG (SplitMix64). Used everywhere randomness is
/// needed so that all synthetic datasets and property tests are reproducible
/// from a printed seed.
class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed) {}

  /// Next raw 64-bit value.
  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform integer in [0, n). Requires n > 0.
  uint64_t Uniform(uint64_t n) { return Next() % n; }

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformRange(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(Uniform(static_cast<uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Returns true with probability p.
  bool Bernoulli(double p) { return NextDouble() < p; }

 private:
  uint64_t state_;
};

/// Samples indices 0..n-1 with Zipf-like skew (probability of rank r
/// proportional to 1/(r+1)^s). Precomputes the CDF once; sampling is a
/// binary search. Used by the synthetic data generators to produce the
/// skewed value distributions real microdata exhibits.
class ZipfSampler {
 public:
  /// Builds a sampler over n ranks with exponent s (s=0 is uniform).
  ZipfSampler(size_t n, double s);

  /// Draws one rank in [0, n).
  size_t Sample(Rng& rng) const;

  size_t size() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

}  // namespace incognito

#endif  // INCOGNITO_COMMON_RANDOM_H_
