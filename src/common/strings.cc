#include "common/strings.h"

#include <cerrno>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace incognito {

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      break;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string_view StripWhitespace(std::string_view s) {
  size_t begin = 0;
  while (begin < s.size() &&
         (s[begin] == ' ' || s[begin] == '\t' || s[begin] == '\r' ||
          s[begin] == '\n')) {
    ++begin;
  }
  size_t end = s.size();
  while (end > begin &&
         (s[end - 1] == ' ' || s[end - 1] == '\t' || s[end - 1] == '\r' ||
          s[end - 1] == '\n')) {
    --end;
  }
  return s.substr(begin, end - begin);
}

std::string StringPrintf(const char* fmt, ...) {
  va_list ap;
  va_start(ap, fmt);
  va_list ap_copy;
  va_copy(ap_copy, ap);
  int n = vsnprintf(nullptr, 0, fmt, ap);
  va_end(ap);
  std::string out;
  if (n > 0) {
    out.resize(static_cast<size_t>(n));
    vsnprintf(out.data(), out.size() + 1, fmt, ap_copy);
  }
  va_end(ap_copy);
  return out;
}

bool ParseInt64(std::string_view s, int64_t* out) {
  s = StripWhitespace(s);
  if (s.empty()) return false;
  std::string buf(s);
  errno = 0;
  char* end = nullptr;
  long long v = strtoll(buf.c_str(), &end, 10);
  if (errno != 0 || end != buf.c_str() + buf.size()) return false;
  *out = static_cast<int64_t>(v);
  return true;
}

bool ParseDouble(std::string_view s, double* out) {
  s = StripWhitespace(s);
  if (s.empty()) return false;
  std::string buf(s);
  errno = 0;
  char* end = nullptr;
  double v = strtod(buf.c_str(), &end);
  if (errno != 0 || end != buf.c_str() + buf.size()) return false;
  *out = v;
  return true;
}

}  // namespace incognito
