#include "common/random.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace incognito {

ZipfSampler::ZipfSampler(size_t n, double s) {
  assert(n > 0);
  cdf_.resize(n);
  double total = 0.0;
  for (size_t r = 0; r < n; ++r) {
    total += 1.0 / std::pow(static_cast<double>(r + 1), s);
    cdf_[r] = total;
  }
  for (size_t r = 0; r < n; ++r) cdf_[r] /= total;
}

size_t ZipfSampler::Sample(Rng& rng) const {
  double u = rng.NextDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) return cdf_.size() - 1;
  return static_cast<size_t>(it - cdf_.begin());
}

}  // namespace incognito
